#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/contracts.h"

namespace nylon::util {
namespace {

TEST(rng, same_seed_same_stream) {
  rng a(123);
  rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(rng, different_seeds_different_streams) {
  rng a(1);
  rng b(2);
  int differences = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() != b()) ++differences;
  }
  EXPECT_GT(differences, 60);
}

TEST(rng, zero_seed_is_well_mixed) {
  rng r(0);
  // splitmix expansion means even seed 0 must not produce degenerate output.
  std::set<std::uint64_t> values;
  for (int i = 0; i < 100; ++i) values.insert(r());
  EXPECT_EQ(values.size(), 100u);
}

TEST(rng, reseed_restarts_stream) {
  rng r(7);
  const auto first = r();
  r();
  r.reseed(7);
  EXPECT_EQ(r(), first);
}

TEST(rng, uniform_respects_bounds) {
  rng r(42);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(rng, uniform_single_point_range) {
  rng r(42);
  EXPECT_EQ(r.uniform(5, 5), 5u);
}

TEST(rng, uniform_rejects_inverted_range) {
  rng r(42);
  EXPECT_THROW(r.uniform(6, 5), contract_error);
}

TEST(rng, uniform_covers_range) {
  rng r(42);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(rng, uniform_is_roughly_balanced) {
  rng r(42);
  std::vector<int> counts(8, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.uniform(0, 7)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 8, n / 8 * 0.1);
  }
}

TEST(rng, uniform01_in_unit_interval) {
  rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(rng, bernoulli_edges) {
  rng r(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(rng, bernoulli_rate) {
  rng r(1);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits, 0.3 * n, 0.02 * n);
}

TEST(rng, index_requires_positive) {
  rng r(1);
  EXPECT_THROW(r.index(0), contract_error);
}

TEST(rng, shuffle_is_permutation) {
  rng r(5);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto sorted = v;
  r.shuffle(std::span<int>(v));
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(rng, shuffle_actually_moves_elements) {
  rng r(5);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  r.shuffle(std::span<int>(v));
  int moved = 0;
  for (int i = 0; i < 100; ++i) moved += v[i] != i ? 1 : 0;
  EXPECT_GT(moved, 80);
}

TEST(rng, sample_indices_distinct_and_bounded) {
  rng r(11);
  const auto sample = r.sample_indices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto idx : sample) EXPECT_LT(idx, 100u);
}

TEST(rng, sample_indices_full_population) {
  rng r(11);
  const auto sample = r.sample_indices(10, 10);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(rng, sample_indices_rejects_oversample) {
  rng r(11);
  EXPECT_THROW(r.sample_indices(5, 6), contract_error);
}

TEST(rng, pick_returns_member) {
  rng r(3);
  std::vector<int> v{10, 20, 30};
  for (int i = 0; i < 50; ++i) {
    const int x = r.pick(std::span<int>(v));
    EXPECT_TRUE(x == 10 || x == 20 || x == 30);
  }
}

TEST(splitmix, deterministic_and_advances_state) {
  std::uint64_t s1 = 99;
  std::uint64_t s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, 99u);
}

TEST(derive_seed, child_streams_are_distinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t stream = 0; stream < 100; ++stream) {
    seeds.insert(derive_seed(42, stream));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

TEST(derive_seed, depends_on_parent) {
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

// Property sweep: uniform(lo, hi) stays in bounds across many ranges.
class rng_range_test : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(rng_range_test, uniform_in_bounds) {
  rng r(GetParam());
  const std::uint64_t lo = GetParam() * 3;
  const std::uint64_t hi = lo + GetParam() + 1;
  for (int i = 0; i < 500; ++i) {
    const auto v = r.uniform(lo, hi);
    EXPECT_GE(v, lo);
    EXPECT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(ranges, rng_range_test,
                         ::testing::Values(1, 2, 3, 5, 17, 255, 1000, 65535,
                                           1u << 20));

}  // namespace
}  // namespace nylon::util
