#include "util/flat_hash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "util/rng.h"

namespace nylon::util {
namespace {

TEST(flat_hash, empty_initially) {
  flat_hash_map<std::uint32_t, int> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.find(7), nullptr);
  EXPECT_FALSE(m.erase(7));
}

TEST(flat_hash, insert_find_erase) {
  flat_hash_map<std::uint32_t, int> m;
  m.insert_or_get(1) = 10;
  m.insert_or_get(2) = 20;
  EXPECT_EQ(m.size(), 2u);
  ASSERT_NE(m.find(1), nullptr);
  EXPECT_EQ(*m.find(1), 10);
  EXPECT_EQ(*m.find(2), 20);
  EXPECT_EQ(m.find(3), nullptr);
  EXPECT_TRUE(m.erase(1));
  EXPECT_EQ(m.find(1), nullptr);
  EXPECT_EQ(*m.find(2), 20);
  EXPECT_EQ(m.size(), 1u);
}

TEST(flat_hash, insert_or_get_returns_existing) {
  flat_hash_map<std::uint64_t, int> m;
  m.insert_or_get(42) = 5;
  EXPECT_EQ(m.insert_or_get(42), 5);
  EXPECT_EQ(m.size(), 1u);
}

TEST(flat_hash, reserve_avoids_rehash_invalidation_count) {
  flat_hash_map<std::uint32_t, int> m;
  m.reserve(100);
  for (std::uint32_t i = 0; i < 100; ++i) m.insert_or_get(i) = int(i);
  EXPECT_EQ(m.size(), 100u);
  for (std::uint32_t i = 0; i < 100; ++i) {
    ASSERT_NE(m.find(i), nullptr);
    EXPECT_EQ(*m.find(i), int(i));
  }
}

TEST(flat_hash, for_each_and_mutable_for_each) {
  flat_hash_map<std::uint32_t, int> m;
  for (std::uint32_t i = 0; i < 10; ++i) m.insert_or_get(i) = 1;
  int sum = 0;
  std::as_const(m).for_each([&](std::uint32_t, int v) { sum += v; });
  EXPECT_EQ(sum, 10);
  m.for_each([](std::uint32_t, int& v) { v = 2; });
  sum = 0;
  std::as_const(m).for_each([&](std::uint32_t, int v) { sum += v; });
  EXPECT_EQ(sum, 20);
}

TEST(flat_hash, erase_if_removes_matching) {
  flat_hash_map<std::uint32_t, int> m;
  for (std::uint32_t i = 0; i < 64; ++i) m.insert_or_get(i) = int(i);
  const std::size_t removed =
      m.erase_if([](std::uint32_t, int v) { return v % 2 == 0; });
  EXPECT_EQ(removed, 32u);
  EXPECT_EQ(m.size(), 32u);
  for (std::uint32_t i = 0; i < 64; ++i) {
    EXPECT_EQ(m.find(i) != nullptr, i % 2 == 1) << i;
  }
}

/// Randomized differential test against std::map: inserts, erases
/// (including backshift-heavy patterns) and erase_if sweeps must agree.
TEST(flat_hash, matches_reference_model_under_random_ops) {
  rng r(2024);
  flat_hash_map<std::uint64_t, std::uint64_t> m;
  std::map<std::uint64_t, std::uint64_t> ref;
  for (int op = 0; op < 20000; ++op) {
    // Small key space forces collisions, reuse and long probe chains.
    const std::uint64_t key = r.uniform(0, 199);
    switch (r.uniform(0, 3)) {
      case 0:
      case 1: {
        const std::uint64_t value = r.uniform(0, 1'000'000);
        m.insert_or_get(key) = value;
        ref[key] = value;
        break;
      }
      case 2: {
        EXPECT_EQ(m.erase(key), ref.erase(key) > 0);
        break;
      }
      case 3: {
        const std::uint64_t* found = m.find(key);
        const auto it = ref.find(key);
        ASSERT_EQ(found != nullptr, it != ref.end());
        if (found != nullptr) {
          EXPECT_EQ(*found, it->second);
        }
        break;
      }
    }
    if (op % 1000 == 999) {  // periodic sweep, like expiry purges
      const std::uint64_t cut = r.uniform(0, 1'000'000);
      m.erase_if([&](std::uint64_t, std::uint64_t v) { return v < cut; });
      std::erase_if(ref, [&](const auto& kv) { return kv.second < cut; });
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  for (const auto& [k, v] : ref) {
    ASSERT_NE(m.find(k), nullptr);
    EXPECT_EQ(*m.find(k), v);
  }
}

}  // namespace
}  // namespace nylon::util
