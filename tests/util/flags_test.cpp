#include "util/flags.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace nylon::util {
namespace {

std::vector<std::string> parse(flag_set& flags,
                               std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return flags.parse(static_cast<int>(argv.size()), argv.data());
}

TEST(flags, defaults_without_args) {
  flag_set flags;
  const auto* n = flags.add_int("n", 42, "count");
  const auto* rate = flags.add_double("rate", 0.5, "rate");
  const auto* name = flags.add_string("name", "x", "name");
  const auto* full = flags.add_bool("full", false, "full scale");
  parse(flags, {});
  EXPECT_EQ(*n, 42);
  EXPECT_EQ(*rate, 0.5);
  EXPECT_EQ(*name, "x");
  EXPECT_FALSE(*full);
}

TEST(flags, equals_syntax) {
  flag_set flags;
  const auto* n = flags.add_int("n", 0, "");
  const auto* rate = flags.add_double("rate", 0.0, "");
  parse(flags, {"--n=7", "--rate=1.25"});
  EXPECT_EQ(*n, 7);
  EXPECT_EQ(*rate, 1.25);
}

TEST(flags, space_syntax) {
  flag_set flags;
  const auto* n = flags.add_int("n", 0, "");
  parse(flags, {"--n", "13"});
  EXPECT_EQ(*n, 13);
}

TEST(flags, bare_bool_sets_true) {
  flag_set flags;
  const auto* full = flags.add_bool("full", false, "");
  parse(flags, {"--full"});
  EXPECT_TRUE(*full);
}

TEST(flags, bool_equals_false) {
  flag_set flags;
  const auto* full = flags.add_bool("full", true, "");
  parse(flags, {"--full=false"});
  EXPECT_FALSE(*full);
}

TEST(flags, negative_int) {
  flag_set flags;
  const auto* n = flags.add_int("n", 0, "");
  parse(flags, {"--n=-5"});
  EXPECT_EQ(*n, -5);
}

TEST(flags, positional_arguments_pass_through) {
  flag_set flags;
  flags.add_int("n", 0, "");
  const auto positional = parse(flags, {"alpha", "--n=1", "beta"});
  ASSERT_EQ(positional.size(), 2u);
  EXPECT_EQ(positional[0], "alpha");
  EXPECT_EQ(positional[1], "beta");
}

TEST(flags, unknown_flag_throws) {
  flag_set flags;
  EXPECT_THROW(parse(flags, {"--nope=1"}), std::invalid_argument);
}

TEST(flags, bad_int_throws) {
  flag_set flags;
  flags.add_int("n", 0, "");
  EXPECT_THROW(parse(flags, {"--n=abc"}), std::invalid_argument);
  EXPECT_THROW(parse(flags, {"--n=12x"}), std::invalid_argument);
}

TEST(flags, bad_double_throws) {
  flag_set flags;
  flags.add_double("r", 0.0, "");
  EXPECT_THROW(parse(flags, {"--r=zz"}), std::invalid_argument);
}

TEST(flags, bad_bool_throws) {
  flag_set flags;
  flags.add_bool("b", false, "");
  EXPECT_THROW(parse(flags, {"--b=maybe"}), std::invalid_argument);
}

TEST(flags, missing_value_throws) {
  flag_set flags;
  flags.add_int("n", 0, "");
  EXPECT_THROW(parse(flags, {"--n"}), std::invalid_argument);
}

TEST(flags, duplicate_registration_throws) {
  flag_set flags;
  flags.add_int("n", 0, "");
  EXPECT_THROW(flags.add_double("n", 0.0, ""), std::invalid_argument);
}

TEST(flags, provided_tracks_explicit_flags_only) {
  flag_set flags;
  flags.add_int("n", 600, "");
  flags.add_int("seeds", 1, "");
  flags.add_bool("csv", false, "");
  flags.add_string("json", "", "");
  const char* argv[] = {"prog", "--n=120", "--csv", "--json", "out.json"};
  (void)flags.parse(5, argv);
  EXPECT_TRUE(flags.provided("n"));
  EXPECT_TRUE(flags.provided("csv"));
  EXPECT_TRUE(flags.provided("json"));
  EXPECT_FALSE(flags.provided("seeds"));  // default kept
  EXPECT_FALSE(flags.provided("nope"));   // unregistered
}

TEST(flags, usage_mentions_flags_and_defaults) {
  flag_set flags;
  flags.add_int("peers", 1000, "population");
  const std::string usage = flags.usage("bench");
  EXPECT_NE(usage.find("--peers"), std::string::npos);
  EXPECT_NE(usage.find("1000"), std::string::npos);
  EXPECT_NE(usage.find("population"), std::string::npos);
}

}  // namespace
}  // namespace nylon::util
