// The JSON parser feeding the experiment-spec API: strict, with typed
// accessors and precise errors on malformed input.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "util/contracts.h"
#include "util/json.h"

namespace nylon::util {
namespace {

TEST(json_parse, scalars) {
  EXPECT_TRUE(json::parse("null").is_null());
  EXPECT_TRUE(json::parse("true").as_bool());
  EXPECT_FALSE(json::parse("false").as_bool());
  EXPECT_EQ(json::parse("42").as_int(), 42);
  EXPECT_EQ(json::parse("-7").as_int(), -7);
  EXPECT_TRUE(json::parse("42").is_int());
  EXPECT_TRUE(json::parse("0.25").is_double());
  EXPECT_DOUBLE_EQ(json::parse("0.25").as_double(), 0.25);
  EXPECT_DOUBLE_EQ(json::parse("-1e3").as_double(), -1000.0);
  EXPECT_EQ(json::parse("\"hi\"").as_string(), "hi");
}

TEST(json_parse, int_accessor_accepts_only_integers) {
  EXPECT_THROW((void)json::parse("0.5").as_int(), contract_error);
  EXPECT_DOUBLE_EQ(json::parse("3").as_double(), 3.0);  // int widens fine
  EXPECT_THROW((void)json::parse("\"3\"").as_double(), contract_error);
}

TEST(json_parse, string_escapes) {
  EXPECT_EQ(json::parse(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(json::parse(R"("\u0041\u00e9")").as_string(), "A\xc3\xa9");
  EXPECT_EQ(json::parse(R"("\/")").as_string(), "/");
  // Surrogate escapes would yield invalid UTF-8 in the re-emitted
  // BENCH_*.json; the parser rejects them instead of producing CESU-8.
  EXPECT_THROW(json::parse("\"\\ud83d\\ude80\""), json_parse_error);
  EXPECT_THROW(json::parse("\"\\udc00\""), json_parse_error);
}

TEST(json_parse, containers_and_accessors) {
  const json doc = json::parse(R"({
    "name": "fig3",
    "values": [1, 2, 3],
    "nested": {"flag": true}
  })");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.size(), 3u);
  EXPECT_EQ(doc.at("name").as_string(), "fig3");
  ASSERT_TRUE(doc.at("values").is_array());
  EXPECT_EQ(doc.at("values").size(), 3u);
  EXPECT_EQ(doc.at("values").at(std::size_t{2}).as_int(), 3);
  EXPECT_TRUE(doc.at("nested").at("flag").as_bool());
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), contract_error);
  EXPECT_THROW((void)doc.at("values").at(std::size_t{3}), contract_error);
  // Iteration keeps insertion order.
  EXPECT_EQ(doc.object_items()[0].first, "name");
  EXPECT_EQ(doc.object_items()[2].first, "nested");
}

TEST(json_parse, round_trips_through_dump) {
  const std::string text =
      R"({"a":[1,2.5,"x",null,true],"b":{"c":[],"d":{}},"e":-3})";
  const json doc = json::parse(text);
  EXPECT_EQ(doc.dump_string(0), text);
  // dump -> parse -> dump is a fixed point, pretty-printed too.
  const json again = json::parse(doc.dump_string(2));
  EXPECT_EQ(again.dump_string(0), text);
}

TEST(json_parse, rejects_malformed_documents) {
  const char* bad[] = {
      "",            "{",          "[1,",        "[1 2]",
      "{\"a\" 1}",   "{\"a\":}",   "tru",        "nul",
      "\"open",      "\"\\q\"",    "\"\\u12g4\"", "01x",
      "[1],[2]",     "{\"a\":1,}", "--1",         "1.2.3",
      "{\"a\":1 \"b\":2}",
  };
  for (const char* text : bad) {
    EXPECT_THROW(json::parse(text), json_parse_error) << "input: " << text;
  }
}

TEST(json_parse, rejects_duplicate_keys_and_trailing_garbage) {
  EXPECT_THROW(json::parse(R"({"a":1,"a":2})"), json_parse_error);
  EXPECT_THROW(json::parse("[1,2,3] x"), json_parse_error);
}

TEST(json_parse, error_reports_offset) {
  try {
    json::parse("[1, 2, oops]");
    FAIL() << "expected json_parse_error";
  } catch (const json_parse_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
}

TEST(json_parse, unescaped_control_characters_rejected) {
  EXPECT_THROW(json::parse("\"a\nb\""), json_parse_error);
}

TEST(json_parse, file_round_trip) {
  const std::string path = ::testing::TempDir() + "json_parse_roundtrip.json";
  json doc = json::object();
  doc["bench"] = "x";
  doc["values"].push_back(1.5);
  write_json_file(path, doc);
  const json loaded = load_json_file(path);
  EXPECT_EQ(loaded.dump_string(0), doc.dump_string(0));
  std::remove(path.c_str());
  EXPECT_THROW(load_json_file(path), std::runtime_error);
}

}  // namespace
}  // namespace nylon::util
