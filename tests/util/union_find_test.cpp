#include "util/union_find.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace nylon::util {
namespace {

TEST(union_find, starts_as_singletons) {
  union_find uf(5);
  EXPECT_EQ(uf.set_count(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.find(i), i);
    EXPECT_EQ(uf.size_of(i), 1u);
  }
}

TEST(union_find, unite_merges) {
  union_find uf(4);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.connected(0, 1));
  EXPECT_FALSE(uf.connected(0, 2));
  EXPECT_EQ(uf.set_count(), 3u);
  EXPECT_EQ(uf.size_of(0), 2u);
}

TEST(union_find, unite_same_set_returns_false) {
  union_find uf(3);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));
  EXPECT_EQ(uf.set_count(), 2u);
}

TEST(union_find, transitive_connectivity) {
  union_find uf(6);
  uf.unite(0, 1);
  uf.unite(1, 2);
  uf.unite(3, 4);
  EXPECT_TRUE(uf.connected(0, 2));
  EXPECT_TRUE(uf.connected(3, 4));
  EXPECT_FALSE(uf.connected(2, 3));
  uf.unite(2, 3);
  EXPECT_TRUE(uf.connected(0, 4));
  EXPECT_FALSE(uf.connected(0, 5));
}

TEST(union_find, largest_set_tracks_merges) {
  union_find uf(10);
  EXPECT_EQ(uf.largest_set(), 1u);
  uf.unite(0, 1);
  uf.unite(2, 3);
  uf.unite(0, 2);
  EXPECT_EQ(uf.largest_set(), 4u);
  uf.unite(5, 6);
  EXPECT_EQ(uf.largest_set(), 4u);
}

TEST(union_find, chain_of_all) {
  union_find uf(100);
  for (std::size_t i = 1; i < 100; ++i) uf.unite(i - 1, i);
  EXPECT_EQ(uf.set_count(), 1u);
  EXPECT_EQ(uf.largest_set(), 100u);
  EXPECT_TRUE(uf.connected(0, 99));
}

TEST(union_find, out_of_range_throws) {
  union_find uf(3);
  EXPECT_THROW((void)uf.find(3), contract_error);
}

TEST(union_find, empty_structure) {
  union_find uf(0);
  EXPECT_EQ(uf.set_count(), 0u);
  EXPECT_EQ(uf.largest_set(), 0u);
}

}  // namespace
}  // namespace nylon::util
