#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace nylon::util {
namespace {

TEST(running_stats, empty_is_all_zero) {
  running_stats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(running_stats, single_value) {
  running_stats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(running_stats, known_values) {
  running_stats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(running_stats, merge_equals_sequential) {
  running_stats all;
  running_stats left;
  running_stats right;
  for (int i = 0; i < 50; ++i) {
    const double v = i * 0.7 - 3.0;
    all.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(running_stats, merge_with_empty_is_identity) {
  running_stats s;
  s.add(1.0);
  s.add(3.0);
  running_stats empty;
  s.merge(empty);
  EXPECT_EQ(s.count(), 2u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  empty.merge(s);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(summarize, empty_input) {
  const summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(summarize, basic_percentiles) {
  std::vector<double> v;
  for (int i = 1; i <= 100; ++i) v.push_back(i);
  const summary s = summarize(v);
  EXPECT_EQ(s.count, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 100.0);
  EXPECT_NEAR(s.median, 50.5, 1e-9);
  EXPECT_NEAR(s.p90, 90.1, 1e-9);
  EXPECT_NEAR(s.p99, 99.01, 1e-9);
}

TEST(percentile_sorted, interpolates) {
  const std::vector<double> v{10.0, 20.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 1.0), 20.0);
}

TEST(percentile_sorted, single_element) {
  const std::vector<double> v{7.0};
  EXPECT_DOUBLE_EQ(percentile_sorted(v, 0.3), 7.0);
}

TEST(percentile_sorted, empty) {
  EXPECT_DOUBLE_EQ(percentile_sorted({}, 0.5), 0.0);
}

TEST(mean_of, basic) {
  const std::vector<double> v{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(mean_of(v), 2.0);
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
}

}  // namespace
}  // namespace nylon::util
