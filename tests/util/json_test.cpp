#include "util/json.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

namespace nylon::util {
namespace {

TEST(json, scalars_render) {
  EXPECT_EQ(json{}.dump_string(0), "null");
  EXPECT_EQ(json(true).dump_string(0), "true");
  EXPECT_EQ(json(false).dump_string(0), "false");
  EXPECT_EQ(json(42).dump_string(0), "42");
  EXPECT_EQ(json(-7).dump_string(0), "-7");
  EXPECT_EQ(json(2.5).dump_string(0), "2.5");
  EXPECT_EQ(json("hi").dump_string(0), "\"hi\"");
}

TEST(json, doubles_round_trip_shortest) {
  EXPECT_EQ(json(0.1).dump_string(0), "0.1");
  EXPECT_EQ(json(1e300).dump_string(0), "1e+300");
}

TEST(json, non_finite_becomes_null) {
  EXPECT_EQ(json(std::numeric_limits<double>::infinity()).dump_string(0),
            "null");
  EXPECT_EQ(json(std::numeric_limits<double>::quiet_NaN()).dump_string(0),
            "null");
}

TEST(json, strings_escape) {
  EXPECT_EQ(json("a\"b\\c\nd").dump_string(0), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json(std::string("\x01", 1)).dump_string(0), "\"\\u0001\"");
}

TEST(json, object_preserves_insertion_order) {
  json j = json::object();
  j["zebra"] = 1;
  j["apple"] = 2;
  j["mid"] = 3;
  EXPECT_EQ(j.dump_string(0), "{\"zebra\":1,\"apple\":2,\"mid\":3}");
  j["zebra"] = 9;  // update in place, no reorder
  EXPECT_EQ(j.dump_string(0), "{\"zebra\":9,\"apple\":2,\"mid\":3}");
}

TEST(json, arrays_and_nesting) {
  json j = json::object();
  j["rows"].push_back(1);
  j["rows"].push_back("two");
  json& nested = j["rows"].push_back(json::object());
  nested["k"] = true;
  EXPECT_EQ(j.dump_string(0), "{\"rows\":[1,\"two\",{\"k\":true}]}");
}

TEST(json, empty_containers_render) {
  EXPECT_EQ(json::array().dump_string(0), "[]");
  EXPECT_EQ(json::object().dump_string(0), "{}");
}

TEST(json, pretty_print_indents) {
  json j = json::object();
  j["a"] = 1;
  EXPECT_EQ(j.dump_string(2), "{\n  \"a\": 1\n}");
}

TEST(json, write_json_file_round_trips) {
  const std::string path = ::testing::TempDir() + "nylon_json_test.json";
  json j = json::object();
  j["name"] = "bench";
  j["values"].push_back(1.5);
  write_json_file(path, j);
  std::ifstream in(path);
  std::stringstream content;
  content << in.rdbuf();
  EXPECT_EQ(content.str(), "{\n  \"name\": \"bench\",\n  \"values\": [\n    1.5\n  ]\n}\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace nylon::util
