#include "util/wall_timer.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace nylon::util {
namespace {

TEST(wall_timer, measures_elapsed_wall_time) {
  wall_timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  const double elapsed = timer.seconds();
  // Sleep can oversleep but never undersleeps the full duration.
  EXPECT_GE(elapsed, 0.009);
}

TEST(wall_timer, is_monotone) {
  wall_timer timer;
  const double a = timer.seconds();
  const double b = timer.seconds();
  EXPECT_GE(a, 0.0);
  EXPECT_GE(b, a);
}

TEST(wall_timer, reset_restarts_the_stopwatch) {
  wall_timer timer;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  timer.reset();
  // After reset the elapsed time starts over from (near) zero.
  EXPECT_LT(timer.seconds(), 0.009);
}

}  // namespace
}  // namespace nylon::util
