#include "net/transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "sim/scheduler.h"
#include "util/rng.h"

namespace nylon::net {
namespace {

class test_payload final : public payload {
 public:
  explicit test_payload(std::size_t size = 100) : size_(size) {}
  [[nodiscard]] std::size_t wire_size() const noexcept override {
    return size_;
  }
  [[nodiscard]] std::string_view type_name() const noexcept override {
    return "TEST";
  }

 private:
  std::size_t size_;
};

class recorder final : public endpoint_handler {
 public:
  void on_datagram(const datagram& dgram) override {
    received.push_back(dgram);
  }
  std::vector<datagram> received;
};

class transport_test : public ::testing::Test {
 protected:
  transport_test()
      : rng_(1),
        transport_(sched_, rng_,
                   std::make_unique<fixed_latency>(sim::millis(50))) {}

  payload_ptr body(std::size_t size = 100) {
    return make_payload<test_payload>(size);
  }

  sim::scheduler sched_;
  util::rng rng_;
  transport transport_;
};

TEST_F(transport_test, public_to_public_delivery) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::open, b);
  transport_.send(ida, transport_.advertised_endpoint(idb), body());
  EXPECT_TRUE(b.received.empty());  // not before the latency elapses
  sched_.run_for(sim::millis(49));
  EXPECT_TRUE(b.received.empty());
  sched_.run_for(sim::millis(1));
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.received[0].source, transport_.advertised_endpoint(ida));
}

TEST_F(transport_test, unsolicited_to_natted_is_filtered) {
  recorder pub;
  recorder natted;
  const node_id id_pub = transport_.add_node(nat::nat_type::open, pub);
  const node_id id_nat =
      transport_.add_node(nat::nat_type::port_restricted_cone, natted);
  transport_.send(id_pub, transport_.advertised_endpoint(id_nat), body());
  sched_.run_for(sim::millis(100));
  EXPECT_TRUE(natted.received.empty());
  EXPECT_EQ(transport_.drops(drop_reason::nat_filtered), 1u);
}

TEST_F(transport_test, outbound_opens_hole_for_reply) {
  recorder pub;
  recorder natted;
  const node_id id_pub = transport_.add_node(nat::nat_type::open, pub);
  const node_id id_nat =
      transport_.add_node(nat::nat_type::port_restricted_cone, natted);
  // Natted peer contacts the public peer first...
  transport_.send(id_nat, transport_.advertised_endpoint(id_pub), body());
  sched_.run_for(sim::millis(100));
  ASSERT_EQ(pub.received.size(), 1u);
  // ...then the reply to the observed source endpoint passes the NAT.
  transport_.send(id_pub, pub.received[0].source, body());
  sched_.run_for(sim::millis(100));
  ASSERT_EQ(natted.received.size(), 1u);
  EXPECT_EQ(transport_.drops(drop_reason::nat_filtered), 0u);
}

TEST_F(transport_test, reply_after_hole_timeout_is_dropped) {
  recorder pub;
  recorder natted;
  const node_id id_pub = transport_.add_node(nat::nat_type::open, pub);
  const node_id id_nat =
      transport_.add_node(nat::nat_type::restricted_cone, natted);
  transport_.send(id_nat, transport_.advertised_endpoint(id_pub), body());
  sched_.run_for(sim::millis(100));
  ASSERT_EQ(pub.received.size(), 1u);
  sched_.run_for(transport_.config().hole_timeout);
  transport_.send(id_pub, pub.received[0].source, body());
  sched_.run_for(sim::millis(100));
  EXPECT_TRUE(natted.received.empty());
  EXPECT_EQ(transport_.drops(drop_reason::nat_filtered), 1u);
}

TEST_F(transport_test, messages_to_dead_nodes_dropped) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::open, b);
  transport_.remove_node(idb);
  EXPECT_FALSE(transport_.alive(idb));
  transport_.send(ida, transport_.advertised_endpoint(idb), body());
  sched_.run_for(sim::millis(100));
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(transport_.drops(drop_reason::dead_node), 1u);
}

TEST_F(transport_test, dead_sender_cannot_send) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::open, b);
  transport_.remove_node(ida);
  transport_.send(ida, transport_.advertised_endpoint(idb), body());
  sched_.run_for(sim::millis(100));
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(transport_.drops(drop_reason::sender_dead), 1u);
}

TEST_F(transport_test, unknown_destination_dropped) {
  recorder a;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  transport_.send(ida, endpoint{ip_address{0xDEADBEEF}, 1}, body());
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(transport_.drops(drop_reason::unknown_destination), 1u);
}

TEST_F(transport_test, wrong_port_on_public_host_dropped) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::open, b);
  endpoint wrong = transport_.advertised_endpoint(idb);
  wrong.port += 1;
  transport_.send(ida, wrong, body());
  sched_.run_for(sim::millis(100));
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(transport_.drops(drop_reason::unknown_destination), 1u);
}

TEST_F(transport_test, byte_accounting_includes_headers) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::open, b);
  transport_.send(ida, transport_.advertised_endpoint(idb), body(72));
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(transport_.traffic(ida).bytes_sent, 72 + udp_header_bytes);
  EXPECT_EQ(transport_.traffic(idb).bytes_received, 72 + udp_header_bytes);
  EXPECT_EQ(transport_.traffic(ida).msgs_sent, 1u);
  EXPECT_EQ(transport_.traffic(idb).msgs_received, 1u);
}

TEST_F(transport_test, dropped_messages_count_as_sent_not_received) {
  recorder a;
  recorder natted;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id id_nat =
      transport_.add_node(nat::nat_type::symmetric, natted);
  transport_.send(ida, transport_.advertised_endpoint(id_nat), body());
  sched_.run_for(sim::millis(100));
  EXPECT_GT(transport_.traffic(ida).bytes_sent, 0u);
  EXPECT_EQ(transport_.traffic(id_nat).bytes_received, 0u);
}

TEST_F(transport_test, reset_traffic_zeroes_counters) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::open, b);
  transport_.send(ida, transport_.advertised_endpoint(idb), body());
  sched_.run_for(sim::millis(100));
  transport_.reset_traffic();
  EXPECT_EQ(transport_.traffic(ida).bytes_sent, 0u);
  EXPECT_EQ(transport_.traffic(idb).bytes_received, 0u);
  EXPECT_TRUE(transport_.bytes_by_type().empty());
}

TEST_F(transport_test, bytes_by_type_accumulates) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::open, b);
  transport_.send(ida, transport_.advertised_endpoint(idb), body(10));
  transport_.send(ida, transport_.advertised_endpoint(idb), body(20));
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(transport_.bytes_by_type().at("TEST"),
            10 + 20 + 2 * udp_header_bytes);
}

TEST_F(transport_test, would_deliver_matches_reality_public) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::open, b);
  EXPECT_EQ(transport_.would_deliver(ida, transport_.advertised_endpoint(idb)),
            idb);
}

TEST_F(transport_test, would_deliver_respects_nat_state) {
  recorder pub;
  recorder natted;
  const node_id id_pub = transport_.add_node(nat::nat_type::open, pub);
  const node_id id_nat =
      transport_.add_node(nat::nat_type::restricted_cone, natted);
  const endpoint nat_ep = transport_.advertised_endpoint(id_nat);
  EXPECT_EQ(transport_.would_deliver(id_pub, nat_ep), std::nullopt);
  // After the natted peer opens a hole, the oracle flips to deliverable.
  transport_.send(id_nat, transport_.advertised_endpoint(id_pub), body());
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(transport_.would_deliver(id_pub, nat_ep), id_nat);
}

TEST_F(transport_test, would_deliver_never_mutates) {
  recorder pub;
  recorder natted;
  const node_id id_pub = transport_.add_node(nat::nat_type::open, pub);
  const node_id id_nat =
      transport_.add_node(nat::nat_type::restricted_cone, natted);
  const endpoint nat_ep = transport_.advertised_endpoint(id_nat);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(transport_.would_deliver(id_pub, nat_ep), std::nullopt);
  }
  // Dry-runs must not have created any NAT state admitting the packet.
  transport_.send(id_pub, nat_ep, body());
  sched_.run_for(sim::millis(100));
  EXPECT_TRUE(natted.received.empty());
}

TEST_F(transport_test, loss_rate_drops_messages) {
  sim::scheduler sched;
  util::rng rng(3);
  transport_config cfg;
  cfg.loss_rate = 1.0;
  transport lossy(sched, rng, std::make_unique<fixed_latency>(1), cfg);
  recorder a;
  recorder b;
  const node_id ida = lossy.add_node(nat::nat_type::open, a);
  const node_id idb = lossy.add_node(nat::nat_type::open, b);
  lossy.send(ida, lossy.advertised_endpoint(idb),
             make_payload<test_payload>());
  sched.run_for(sim::millis(10));
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(lossy.drops(drop_reason::random_loss), 1u);
}

TEST_F(transport_test, node_metadata_accessors) {
  recorder a;
  recorder b;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  const node_id idb = transport_.add_node(nat::nat_type::symmetric, b);
  EXPECT_EQ(transport_.node_count(), 2u);
  EXPECT_EQ(transport_.type_of(ida), nat::nat_type::open);
  EXPECT_EQ(transport_.type_of(idb), nat::nat_type::symmetric);
  EXPECT_EQ(transport_.device_of(ida), nullptr);
  EXPECT_NE(transport_.device_of(idb), nullptr);
  EXPECT_EQ(transport_.advertised_endpoint(idb).port, 0u);
}

TEST_F(transport_test, total_drops_sums_reasons) {
  recorder a;
  const node_id ida = transport_.add_node(nat::nat_type::open, a);
  transport_.send(ida, endpoint{ip_address{0xDEADBEEF}, 1}, body());
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(transport_.total_drops(), 1u);
}

}  // namespace
}  // namespace nylon::net
