// Drop accounting, partitions and NAT re-binding: every drop_reason is
// provoked by a concrete scenario, purge_nat_state() keeps live state,
// and the partition / rebind hooks behave as the workload engine assumes.
#include "net/transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sim/scheduler.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace nylon::net {
namespace {

class test_payload final : public payload {
 public:
  [[nodiscard]] std::size_t wire_size() const noexcept override { return 64; }
  [[nodiscard]] std::string_view type_name() const noexcept override {
    return "TEST";
  }
};

class recorder final : public endpoint_handler {
 public:
  void on_datagram(const datagram& dgram) override {
    received.push_back(dgram);
  }
  std::vector<datagram> received;
};

payload_ptr body() { return make_payload<test_payload>(); }

class transport_dynamics_test : public ::testing::Test {
 protected:
  transport_dynamics_test()
      : rng_(7),
        transport_(sched_, rng_,
                   std::make_unique<fixed_latency>(sim::millis(50))) {}

  sim::scheduler sched_;
  util::rng rng_;
  transport transport_;
};

// --- every drop reason has a name and a provoking scenario -------------------

TEST(drop_reasons, every_reason_has_a_name) {
  for (std::size_t r = 0; r < static_cast<std::size_t>(drop_reason::count_);
       ++r) {
    EXPECT_NE(to_string(static_cast<drop_reason>(r)), "?")
        << "unnamed drop_reason #" << r;
  }
}

TEST_F(transport_dynamics_test, all_reasons_countable) {
  recorder pub_a;
  recorder pub_b;
  recorder natted;
  const node_id a = transport_.add_node(nat::nat_type::open, pub_a);
  const node_id b = transport_.add_node(nat::nat_type::open, pub_b);
  const node_id n =
      transport_.add_node(nat::nat_type::port_restricted_cone, natted);

  // unknown_destination: nobody owns that IP.
  transport_.send(a, endpoint{ip_address{0xDEADBEEF}, 9}, body());
  // nat_filtered: unsolicited packet at a PRC NAT.
  transport_.send(a, transport_.advertised_endpoint(n), body());
  // dead_node: the public destination left (its address still routes).
  transport_.remove_node(b);
  transport_.send(a, transport_.advertised_endpoint(b), body());
  // sender_dead: the departed node tries to speak.
  transport_.send(b, transport_.advertised_endpoint(a), body());
  sched_.run_for(sim::millis(100));  // flush before splitting the network
  // partitioned: split a and n across sides.
  transport_.set_partition({0, 0, 1});
  transport_.send(n, transport_.advertised_endpoint(a), body());
  sched_.run_for(sim::millis(100));

  EXPECT_EQ(transport_.drops(drop_reason::unknown_destination), 1u);
  EXPECT_EQ(transport_.drops(drop_reason::nat_filtered), 1u);
  EXPECT_EQ(transport_.drops(drop_reason::dead_node), 1u);
  EXPECT_EQ(transport_.drops(drop_reason::sender_dead), 1u);
  EXPECT_EQ(transport_.drops(drop_reason::partitioned), 1u);
  EXPECT_EQ(transport_.drops(drop_reason::random_loss), 0u);
  EXPECT_EQ(transport_.total_drops(), 5u);

  // random_loss needs its own lossy transport.
  sim::scheduler sched;
  util::rng rng(3);
  transport_config cfg;
  cfg.loss_rate = 1.0;
  transport lossy(sched, rng, std::make_unique<fixed_latency>(1), cfg);
  recorder x;
  recorder y;
  const node_id ix = lossy.add_node(nat::nat_type::open, x);
  const node_id iy = lossy.add_node(nat::nat_type::open, y);
  lossy.send(ix, lossy.advertised_endpoint(iy), body());
  sched.run_for(sim::millis(10));
  EXPECT_EQ(lossy.drops(drop_reason::random_loss), 1u);
}

// --- purge_nat_state ---------------------------------------------------------

TEST_F(transport_dynamics_test, purge_keeps_live_mappings) {
  recorder pub;
  recorder natted;
  const node_id p = transport_.add_node(nat::nat_type::open, pub);
  const node_id n =
      transport_.add_node(nat::nat_type::port_restricted_cone, natted);
  // Open a hole towards the public peer.
  transport_.send(n, transport_.advertised_endpoint(p), body());
  sched_.run_for(sim::millis(100));
  ASSERT_EQ(pub.received.size(), 1u);
  const endpoint hole = pub.received[0].source;

  // Well inside the 90 s lifetime: purge must not evict the live rule.
  sched_.run_for(sim::seconds(60));
  transport_.purge_nat_state();
  EXPECT_EQ(transport_.device_of(n)->active_rule_count(sched_.now()), 1u);
  transport_.send(p, hole, body());
  sched_.run_for(sim::millis(100));
  ASSERT_EQ(natted.received.size(), 1u);  // reply passed after the purge

  // The reply refreshed the rule; only after a full quiet lifetime does
  // the purge drop it.
  sched_.run_for(transport_.config().hole_timeout + sim::seconds(1));
  transport_.purge_nat_state();
  EXPECT_EQ(transport_.device_of(n)->active_rule_count(sched_.now()), 0u);
  transport_.send(p, hole, body());
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(natted.received.size(), 1u);  // no new delivery
  EXPECT_EQ(transport_.drops(drop_reason::nat_filtered), 1u);
}

// --- partitions --------------------------------------------------------------

TEST_F(transport_dynamics_test, partition_blocks_cross_side_only) {
  recorder a;
  recorder b;
  recorder c;
  const node_id ia = transport_.add_node(nat::nat_type::open, a);
  const node_id ib = transport_.add_node(nat::nat_type::open, b);
  const node_id ic = transport_.add_node(nat::nat_type::open, c);
  transport_.set_partition({0, 0, 1});
  EXPECT_TRUE(transport_.partitioned());

  transport_.send(ia, transport_.advertised_endpoint(ib), body());  // same side
  transport_.send(ia, transport_.advertised_endpoint(ic), body());  // across
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(b.received.size(), 1u);
  EXPECT_TRUE(c.received.empty());
  EXPECT_EQ(transport_.drops(drop_reason::partitioned), 1u);

  // The oracle agrees with the data path.
  EXPECT_EQ(transport_.would_deliver(ia, transport_.advertised_endpoint(ib)),
            ib);
  EXPECT_EQ(transport_.would_deliver(ia, transport_.advertised_endpoint(ic)),
            std::nullopt);

  transport_.clear_partition();
  transport_.send(ia, transport_.advertised_endpoint(ic), body());
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(c.received.size(), 1u);  // healed
}

TEST_F(transport_dynamics_test, partition_onset_drops_packet_in_flight) {
  recorder a;
  recorder b;
  const node_id ia = transport_.add_node(nat::nat_type::open, a);
  const node_id ib = transport_.add_node(nat::nat_type::open, b);
  transport_.send(ia, transport_.advertised_endpoint(ib), body());
  sched_.run_for(sim::millis(10));  // packet is in the air
  transport_.set_partition({0, 1});
  sched_.run_for(sim::millis(100));
  // The contract is delivery-time filtering: the split swallows even
  // packets launched before it happened.
  EXPECT_TRUE(b.received.empty());
  EXPECT_EQ(transport_.drops(drop_reason::partitioned), 1u);
}

TEST_F(transport_dynamics_test, nodes_added_after_partition_default_side0) {
  recorder a;
  recorder b;
  const node_id ia = transport_.add_node(nat::nat_type::open, a);
  transport_.set_partition({1});
  const node_id ib = transport_.add_node(nat::nat_type::open, b);
  EXPECT_EQ(transport_.side_of(ia), 1);
  EXPECT_EQ(transport_.side_of(ib), 0);
}

// --- NAT re-binding ----------------------------------------------------------

TEST_F(transport_dynamics_test, rebind_moves_public_ip_and_drops_state) {
  recorder pub;
  recorder natted;
  const node_id p = transport_.add_node(nat::nat_type::open, pub);
  const node_id n =
      transport_.add_node(nat::nat_type::port_restricted_cone, natted);
  transport_.send(n, transport_.advertised_endpoint(p), body());
  sched_.run_for(sim::millis(100));
  ASSERT_EQ(pub.received.size(), 1u);
  const endpoint old_hole = pub.received[0].source;
  const endpoint old_adv = transport_.advertised_endpoint(n);

  const endpoint new_adv = transport_.rebind_nat(n);
  EXPECT_NE(new_adv.ip, old_adv.ip);
  EXPECT_EQ(transport_.advertised_endpoint(n), new_adv);
  // All previous NAT state is gone with the old box.
  EXPECT_EQ(transport_.device_of(n)->active_rule_count(sched_.now()), 0u);

  // Packets to the old endpoint now route nowhere.
  transport_.send(p, old_hole, body());
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(natted.received.size(), 0u);
  EXPECT_EQ(transport_.drops(drop_reason::unknown_destination), 1u);

  // The node can still initiate from behind the fresh NAT and be replied
  // to at the newly observed source.
  transport_.send(n, transport_.advertised_endpoint(p), body());
  sched_.run_for(sim::millis(100));
  ASSERT_EQ(pub.received.size(), 2u);
  EXPECT_EQ(pub.received[1].source.ip, new_adv.ip);
  transport_.send(p, pub.received[1].source, body());
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(natted.received.size(), 1u);
}

TEST_F(transport_dynamics_test, rebind_requires_natted_alive_node) {
  recorder pub;
  const node_id p = transport_.add_node(nat::nat_type::open, pub);
  EXPECT_THROW(transport_.rebind_nat(p), nylon::contract_error);
  recorder natted;
  const node_id n = transport_.add_node(nat::nat_type::symmetric, natted);
  transport_.remove_node(n);
  EXPECT_THROW(transport_.rebind_nat(n), nylon::contract_error);
}

// --- in-place NAT type migration ---------------------------------------------

TEST_F(transport_dynamics_test, migrate_swaps_type_with_rebind_upheaval) {
  recorder pub;
  recorder natted;
  const node_id p = transport_.add_node(nat::nat_type::open, pub);
  const node_id n =
      transport_.add_node(nat::nat_type::restricted_cone, natted);
  transport_.send(n, transport_.advertised_endpoint(p), body());
  sched_.run_for(sim::millis(100));
  ASSERT_EQ(pub.received.size(), 1u);
  const endpoint old_hole = pub.received[0].source;
  const endpoint old_adv = transport_.advertised_endpoint(n);

  const endpoint new_adv =
      transport_.migrate_nat(n, nat::nat_type::symmetric);
  // The node now *is* a symmetric-NAT node, device included.
  EXPECT_EQ(transport_.type_of(n), nat::nat_type::symmetric);
  EXPECT_EQ(transport_.device_of(n)->type(), nat::nat_type::symmetric);
  // Full rebind semantics ride along: fresh public IP, advertised
  // endpoint moved, old endpoint dead, NAT state gone.
  EXPECT_NE(new_adv.ip, old_adv.ip);
  EXPECT_EQ(transport_.advertised_endpoint(n), new_adv);
  EXPECT_EQ(transport_.device_of(n)->active_rule_count(sched_.now()), 0u);
  transport_.send(p, old_hole, body());
  sched_.run_for(sim::millis(100));
  EXPECT_EQ(natted.received.size(), 0u);
  EXPECT_EQ(transport_.drops(drop_reason::unknown_destination), 1u);

  // And the migrated peer behaves like the new type: a symmetric NAT
  // advertises no stable port (port 0), unlike the cone NAT it replaced.
  EXPECT_EQ(old_adv.port != 0, true);
  EXPECT_EQ(new_adv.port, 0u);
}

TEST_F(transport_dynamics_test, migrate_requires_natted_node_and_type) {
  recorder pub;
  const node_id p = transport_.add_node(nat::nat_type::open, pub);
  EXPECT_THROW(transport_.migrate_nat(p, nat::nat_type::symmetric),
               nylon::contract_error);
  recorder natted;
  const node_id n =
      transport_.add_node(nat::nat_type::port_restricted_cone, natted);
  EXPECT_THROW(transport_.migrate_nat(n, nat::nat_type::open),
               nylon::contract_error);
}

}  // namespace
}  // namespace nylon::net
