#include "net/address.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace nylon::net {
namespace {

TEST(address, dotted_quad_formatting) {
  EXPECT_EQ(to_string(ip_address{0}), "0.0.0.0");
  EXPECT_EQ(to_string(ip_address{0x0A000001}), "10.0.0.1");
  EXPECT_EQ(to_string(ip_address{0xFFFFFFFF}), "255.255.255.255");
  EXPECT_EQ(to_string(ip_address{0xC0A80164}), "192.168.1.100");
}

TEST(address, endpoint_formatting) {
  EXPECT_EQ(to_string(endpoint{ip_address{0x0A000001}, 8080}),
            "10.0.0.1:8080");
}

TEST(address, ordering_and_equality) {
  const ip_address a{1};
  const ip_address b{2};
  EXPECT_LT(a, b);
  EXPECT_EQ(a, ip_address{1});
  const endpoint e1{a, 5};
  const endpoint e2{a, 6};
  const endpoint e3{b, 0};
  EXPECT_LT(e1, e2);
  EXPECT_LT(e2, e3);  // IP dominates port
  EXPECT_EQ(e1, (endpoint{ip_address{1}, 5}));
}

TEST(address, nil_endpoint_is_falsy_sentinel) {
  EXPECT_EQ(nil_endpoint, (endpoint{ip_address{0}, 0}));
}

TEST(address, hashing_distinguishes_ports_and_ips) {
  std::unordered_set<endpoint> set;
  for (std::uint32_t ip = 0; ip < 10; ++ip) {
    for (std::uint32_t port = 0; port < 10; ++port) {
      set.insert(endpoint{ip_address{ip}, port});
    }
  }
  EXPECT_EQ(set.size(), 100u);
}

}  // namespace
}  // namespace nylon::net
