// The loopback-UDP backend, end to end through a real scenario: every
// datagram of a small gossip world leaves through a kernel socket and
// comes back in, paced against the wall clock. Timing-dependent by
// nature, so assertions stick to structure (sockets, flow, zero decode
// errors, churn behavior) rather than digests.
#include <gtest/gtest.h>

#include "runtime/scenario.h"
#include "util/contracts.h"

namespace nylon {
namespace {

runtime::experiment_config udp_config(std::size_t peers) {
  runtime::experiment_config cfg;
  cfg.peer_count = peers;
  cfg.natted_fraction = 0.5;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 6;
  cfg.seed = 99;
  cfg.transport = runtime::transport_kind::udp;
  // 2 ms of wall clock per simulated second: a 10-period run finishes
  // in ~a quarter second while still leaving the (scaled) latency floor
  // above loopback transit most of the time.
  cfg.udp_time_scale = 0.002;
  return cfg;
}

TEST(udp_backend, real_datagrams_carry_the_gossip) {
  runtime::scenario world(udp_config(24));
  ASSERT_NE(world.udp(), nullptr);
  // One socket per simulated public endpoint, from construction.
  EXPECT_GE(world.udp()->socket_count(), 24u);

  world.run_periods(10);

  const net::udp_backend::backend_stats& stats = world.udp()->stats();
  EXPECT_GT(stats.datagrams_sent, 0u);
  EXPECT_GT(stats.datagrams_received, 0u);
  EXPECT_GT(stats.real_bytes_sent, 0u);
  // Our own encoder feeds our own decoder: a single decode error means
  // frame corruption in flight or a codec bug — both are failures.
  EXPECT_EQ(stats.decode_errors, 0u);
  // Every destination IP existed from bootstrap, so no datagram may
  // have been dropped for lack of a socket.
  EXPECT_EQ(stats.no_route, 0u);
  EXPECT_EQ(stats.send_failures, 0u);

  // The world actually gossiped: views populated, everyone alive.
  EXPECT_EQ(world.alive_count(), 24u);
  EXPECT_GT(world.events_executed(), 0u);
}

TEST(udp_backend, rebind_opens_fresh_sockets) {
  runtime::scenario world(udp_config(16));
  ASSERT_NE(world.udp(), nullptr);
  world.run_periods(3);
  const std::size_t before = world.udp()->socket_count();

  const std::size_t rebound = world.rebind_fraction(0.5);
  ASSERT_GT(rebound, 0u);
  // Each rebound NAT surfaced a fresh public IP -> a fresh socket; the
  // abandoned endpoints keep their sockets (packets in flight to them
  // must still make the kernel round trip and be dropped by the
  // transport as unknown_destination, same as the in-sim path).
  EXPECT_EQ(world.udp()->socket_count(), before + rebound);

  world.run_periods(3);
  EXPECT_EQ(world.udp()->stats().decode_errors, 0u);
  EXPECT_EQ(world.alive_count(), 16u);
}

TEST(udp_backend, sim_transports_never_build_a_backend) {
  runtime::experiment_config cfg = udp_config(8);
  cfg.transport = runtime::transport_kind::sim;
  runtime::scenario plain(cfg);
  EXPECT_EQ(plain.udp(), nullptr);

  cfg.transport = runtime::transport_kind::sim_frames;
  runtime::scenario framed(cfg);
  EXPECT_EQ(framed.udp(), nullptr);
}

}  // namespace
}  // namespace nylon
