#include "net/latency.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace nylon::net {
namespace {

TEST(latency, fixed_returns_constant) {
  util::rng rng(1);
  fixed_latency model(sim::millis(50));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.sample(rng), 50);
}

TEST(latency, fixed_rejects_negative) {
  EXPECT_THROW(fixed_latency(-1), nylon::contract_error);
}

TEST(latency, uniform_within_bounds) {
  util::rng rng(2);
  uniform_latency model(10, 90);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 5000; ++i) {
    const sim::sim_time d = model.sample(rng);
    EXPECT_GE(d, 10);
    EXPECT_LE(d, 90);
    saw_low = saw_low || d < 30;
    saw_high = saw_high || d > 70;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(latency, uniform_validates_range) {
  EXPECT_THROW(uniform_latency(-1, 5), nylon::contract_error);
  EXPECT_THROW(uniform_latency(10, 5), nylon::contract_error);
}

TEST(latency, uniform_degenerate_range) {
  util::rng rng(3);
  uniform_latency model(25, 25);
  EXPECT_EQ(model.sample(rng), 25);
}

TEST(latency, paper_latency_is_50ms) {
  util::rng rng(4);
  const auto model = paper_latency();
  EXPECT_EQ(model->sample(rng), sim::millis(50));
}

TEST(latency, lognormal_validates_parameters) {
  EXPECT_THROW(lognormal_latency(0, 0.5), nylon::contract_error);
  EXPECT_THROW(lognormal_latency(-5, 0.5), nylon::contract_error);
  EXPECT_THROW(lognormal_latency(50, -0.1), nylon::contract_error);
}

TEST(latency, lognormal_zero_sigma_is_fixed_at_median) {
  util::rng rng(5);
  lognormal_latency model(sim::millis(50), 0.0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.sample(rng), 50);
}

TEST(latency, lognormal_median_and_tail) {
  util::rng rng(6);
  lognormal_latency model(sim::millis(50), 0.5);
  int below = 0;
  sim::sim_time max_seen = 0;
  const int draws = 20000;
  for (int i = 0; i < draws; ++i) {
    const sim::sim_time d = model.sample(rng);
    EXPECT_GE(d, 1);
    if (d < 50) ++below;
    max_seen = std::max(max_seen, d);
  }
  // Half the mass below the median (loose 3-sigma-ish band)...
  EXPECT_NEAR(static_cast<double>(below) / draws, 0.5, 0.02);
  // ...and a heavy upper tail well beyond it.
  EXPECT_GT(max_seen, 150);
}

TEST(latency, lognormal_deterministic_per_seed) {
  util::rng a(7);
  util::rng b(7);
  lognormal_latency model_a(sim::millis(50), 0.25);
  lognormal_latency model_b(sim::millis(50), 0.25);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(model_a.sample(a), model_b.sample(b));
  }
}

}  // namespace
}  // namespace nylon::net
