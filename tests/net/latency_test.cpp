#include "net/latency.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace nylon::net {
namespace {

TEST(latency, fixed_returns_constant) {
  util::rng rng(1);
  fixed_latency model(sim::millis(50));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(model.sample(rng), 50);
}

TEST(latency, fixed_rejects_negative) {
  EXPECT_THROW(fixed_latency(-1), nylon::contract_error);
}

TEST(latency, uniform_within_bounds) {
  util::rng rng(2);
  uniform_latency model(10, 90);
  bool saw_low = false;
  bool saw_high = false;
  for (int i = 0; i < 5000; ++i) {
    const sim::sim_time d = model.sample(rng);
    EXPECT_GE(d, 10);
    EXPECT_LE(d, 90);
    saw_low = saw_low || d < 30;
    saw_high = saw_high || d > 70;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(latency, uniform_validates_range) {
  EXPECT_THROW(uniform_latency(-1, 5), nylon::contract_error);
  EXPECT_THROW(uniform_latency(10, 5), nylon::contract_error);
}

TEST(latency, uniform_degenerate_range) {
  util::rng rng(3);
  uniform_latency model(25, 25);
  EXPECT_EQ(model.sample(rng), 25);
}

TEST(latency, paper_latency_is_50ms) {
  util::rng rng(4);
  const auto model = paper_latency();
  EXPECT_EQ(model->sample(rng), sim::millis(50));
}

}  // namespace
}  // namespace nylon::net
