#include "workload/report.h"

#include <gtest/gtest.h>

#include <string>

#include "runtime/table_printer.h"

namespace nylon::workload {
namespace {

TEST(bench_report, single_table_layout_unchanged) {
  bench_report report("demo");
  report.param("n", 10);
  runtime::text_table table({"a", "b"});
  table.add_row({"1", "2"});
  report.add("table", to_json(table));
  const std::string doc = report.doc().dump_string(0);
  EXPECT_NE(doc.find("\"bench\""), std::string::npos);
  EXPECT_NE(doc.find("\"demo\""), std::string::npos);
  EXPECT_NE(doc.find("\"table\""), std::string::npos);
  EXPECT_NE(doc.find("\"1\""), std::string::npos);
  EXPECT_NE(doc.find("\"2\""), std::string::npos);
}

TEST(bench_report, holds_multiple_named_tables) {
  bench_report report("fig2_partition");
  runtime::text_table small({"config", "40%"});
  small.add_row({"rand", "100"});
  runtime::text_table large({"config", "40%"});
  large.add_row({"rand", "99"});
  report.add_table("view_8", small);
  report.add_table("view_15", large);

  const std::string doc = report.doc().dump_string(0);
  const auto tables = doc.find("\"tables\"");
  ASSERT_NE(tables, std::string::npos);
  EXPECT_NE(doc.find("\"view_8\"", tables), std::string::npos);
  EXPECT_NE(doc.find("\"view_15\"", tables), std::string::npos);
  // Only one "tables" object: both live under it.
  EXPECT_EQ(doc.find("\"tables\"", tables + 1), std::string::npos);
}

}  // namespace
}  // namespace nylon::workload
