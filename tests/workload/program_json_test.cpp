// Declarative workload programs (JSON form) and the initial-population
// session satellite: incumbents drain on drawn session lengths, but only
// when a program opts in.
#include <gtest/gtest.h>

#include <string>

#include "runtime/scenario.h"
#include "util/contracts.h"
#include "util/json.h"
#include "workload/engine.h"
#include "workload/program.h"
#include "workload/report.h"

namespace nylon::workload {
namespace {

constexpr sim::sim_time kPeriod = sim::seconds(5);

program parse_program(const std::string& text) {
  return program_from_json(util::json::parse(text), kPeriod);
}

TEST(program_json, parses_phases_with_period_scaled_durations) {
  const program prog = parse_program(R"({
    "name": "mixed",
    "phases": [
      {"kind": "steady", "periods": 10},
      {"kind": "grow", "count": 20, "seconds": 30},
      {"kind": "mass_departure", "fraction": 0.5},
      {"kind": "poisson_churn", "periods": 4, "arrivals_per_sec": 2.0,
       "session": {"kind": "pareto", "mean_periods": 8, "pareto_shape": 2.5}},
      {"kind": "partition", "fraction": 0.3},
      {"kind": "heal"},
      {"kind": "nat_redistribution", "natted_fraction": 0.9,
       "mix": "prc_only"},
      {"kind": "nat_rebind", "fraction": 0.25},
      {"kind": "nat_migration", "fraction": 0.4,
       "to_mix": {"full_cone": 0.0, "restricted_cone": 0.0,
                  "port_restricted_cone": 0.5, "symmetric": 0.5}},
      {"kind": "turnover", "periods": 2, "per_tick": 3, "tick_s": 10},
      {"kind": "flash_crowd", "count": 7, "label": "stampede"}
    ]
  })");
  EXPECT_EQ(prog.name(), "mixed");
  ASSERT_EQ(prog.phases().size(), 11u);
  EXPECT_EQ(prog.phases()[0].kind, phase_kind::steady);
  EXPECT_EQ(prog.phases()[0].duration, 10 * kPeriod);
  EXPECT_EQ(prog.phases()[1].duration, sim::seconds(30));
  EXPECT_EQ(prog.phases()[1].count, 20u);
  EXPECT_DOUBLE_EQ(prog.phases()[2].fraction, 0.5);
  EXPECT_EQ(prog.phases()[3].session.k, session_distribution::kind::pareto);
  EXPECT_EQ(prog.phases()[3].session.mean, 8 * kPeriod);
  EXPECT_DOUBLE_EQ(prog.phases()[3].session.pareto_shape, 2.5);
  EXPECT_EQ(prog.phases()[8].kind, phase_kind::nat_migration);
  EXPECT_DOUBLE_EQ(prog.phases()[8].fraction, 0.4);
  ASSERT_TRUE(prog.phases()[8].mix.has_value());
  EXPECT_DOUBLE_EQ(prog.phases()[8].mix->symmetric, 0.5);
  EXPECT_EQ(prog.phases()[9].tick, sim::seconds(10));
  EXPECT_EQ(prog.phases()[10].label, "stampede");
  EXPECT_FALSE(prog.initial_sessions().has_value());
}

TEST(program_json, rejects_bad_programs) {
  // unknown kind
  EXPECT_THROW(parse_program(R"({"phases":[{"kind":"hyperdrive"}]})"),
               contract_error);
  // unknown key inside a phase
  EXPECT_THROW(
      parse_program(R"({"phases":[{"kind":"steady","periods":1,"x":2}]})"),
      contract_error);
  // both periods and seconds
  EXPECT_THROW(
      parse_program(
          R"({"phases":[{"kind":"steady","periods":1,"seconds":5}]})"),
      contract_error);
  // neither duration
  EXPECT_THROW(parse_program(R"({"phases":[{"kind":"steady"}]})"),
               contract_error);
  // empty phases
  EXPECT_THROW(parse_program(R"({"phases":[]})"), contract_error);
  // bad session kind
  EXPECT_THROW(
      parse_program(R"({"phases":[{"kind":"poisson_churn","periods":2,
        "arrivals_per_sec":1,"session":{"kind":"gaussian","mean_s":5}}]})"),
      contract_error);
  // bad mix name
  EXPECT_THROW(
      parse_program(R"({"phases":[{"kind":"nat_redistribution",
        "natted_fraction":0.5,"mix":"all_cone"}]})"),
      contract_error);
}

TEST(program_json, nat_migration_defaults_to_all_symmetric) {
  const program prog = parse_program(
      R"({"phases":[{"kind":"nat_migration","fraction":0.3}]})");
  ASSERT_EQ(prog.phases().size(), 1u);
  ASSERT_TRUE(prog.phases()[0].mix.has_value());
  EXPECT_DOUBLE_EQ(prog.phases()[0].mix->symmetric, 1.0);
  EXPECT_DOUBLE_EQ(prog.phases()[0].mix->port_restricted_cone, 0.0);
  // fraction is mandatory and bounded like the other fraction phases.
  EXPECT_THROW(parse_program(R"({"phases":[{"kind":"nat_migration"}]})"),
               contract_error);
  EXPECT_THROW(parse_program(
                   R"({"phases":[{"kind":"nat_migration","fraction":1.7}]})"),
               contract_error);
}

TEST(program_json, initial_sessions_parse) {
  const program prog = parse_program(R"({
    "phases": [{"kind": "steady", "periods": 5}],
    "initial_sessions": {"kind": "exponential", "mean_periods": 3,
                         "rng_seed": 99}
  })");
  ASSERT_TRUE(prog.initial_sessions().has_value());
  EXPECT_EQ(prog.initial_sessions()->session.k,
            session_distribution::kind::exponential);
  EXPECT_EQ(prog.initial_sessions()->session.mean, 3 * kPeriod);
  ASSERT_TRUE(prog.initial_sessions()->rng_seed.has_value());
  EXPECT_EQ(*prog.initial_sessions()->rng_seed, 99u);
}

runtime::experiment_config small_config() {
  runtime::experiment_config cfg;
  cfg.peer_count = 80;
  cfg.natted_fraction = 0.5;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = 11;
  return cfg;
}

TEST(initial_sessions, incumbents_drain_when_enabled) {
  session_distribution sessions;
  sessions.k = session_distribution::kind::exponential;
  sessions.mean = 4 * kPeriod;

  runtime::scenario world(small_config());
  engine eng(world,
             program{}
                 .then(steady(20 * kPeriod))
                 .with_initial_sessions(sessions),
             engine_options{});
  eng.run();
  // Mean session of 4 periods over a 20-period window: most of the 80
  // incumbents must be gone, and nobody joined to replace them.
  EXPECT_GT(eng.departed(), 40u);
  EXPECT_EQ(eng.joined(), 0u);
  EXPECT_EQ(world.alive_count(), 80u - eng.departed());
}

TEST(initial_sessions, off_by_default_and_deterministic_when_on) {
  const auto run_once = [](bool with_sessions) {
    runtime::scenario world(small_config());
    program prog;
    prog.then(steady(10 * kPeriod));
    if (with_sessions) {
      session_distribution sessions;
      sessions.k = session_distribution::kind::pareto;
      sessions.mean = 6 * kPeriod;
      prog.with_initial_sessions(sessions);
    }
    engine eng(world, std::move(prog), engine_options{});
    eng.run();
    return to_json(eng.trajectory()).dump_string(0);
  };
  // Default: nothing departs (the pre-satellite behavior, pinned by the
  // golden-digest test at full fidelity).
  runtime::scenario world(small_config());
  engine eng(world, program{}.then(steady(10 * kPeriod)), engine_options{});
  eng.run();
  EXPECT_EQ(eng.departed(), 0u);
  EXPECT_EQ(world.alive_count(), 80u);
  // Enabled: identical trajectories across runs at the same seed.
  EXPECT_EQ(run_once(true), run_once(true));
  EXPECT_NE(run_once(true), run_once(false));
}

}  // namespace
}  // namespace nylon::workload
