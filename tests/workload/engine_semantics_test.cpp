// The engine's ordering contract: programs measure *bit-identical*
// numbers to the hand-rolled run/mutate/run loops they replaced in
// bench_fig10_churn and continuous_churn_test.
#include <gtest/gtest.h>

#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"
#include "workload/engine.h"

namespace nylon::workload {
namespace {

runtime::experiment_config cfg_for(std::uint64_t seed, double natted) {
  runtime::experiment_config cfg;
  cfg.peer_count = 150;
  cfg.natted_fraction = natted;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  return cfg;
}

TEST(engine_semantics, fig10_program_equals_handrolled_loop) {
  const int warmup = 12;
  const int heal = 25;
  const double departures = 0.6;

  for (const std::uint64_t seed : {1u, 7u, 23u}) {
    // Reference: the loop bench_fig10_churn used before the engine.
    double reference = 0.0;
    {
      runtime::scenario world(cfg_for(seed, 0.6));
      world.run_periods(warmup);
      world.remove_fraction(departures);
      world.run_periods(heal);
      const auto oracle = world.oracle();
      reference = metrics::measure_clusters(world.transport(), world.peers(),
                                            oracle)
                      .biggest_cluster_pct;
    }
    // Same experiment as a workload program.
    double engine_result = 0.0;
    {
      runtime::scenario world(cfg_for(seed, 0.6));
      const sim::sim_time P = world.config().gossip.shuffle_period;
      engine eng(world, program{}
                            .then(steady(warmup * P))
                            .then(mass_departure(departures))
                            .then(steady(heal * P)));
      eng.run();
      engine_result = eng.final().clusters.biggest_cluster_pct;
    }
    EXPECT_DOUBLE_EQ(reference, engine_result) << "seed " << seed;
  }
}

TEST(engine_semantics, turnover_program_equals_handrolled_loop) {
  const std::uint64_t seed = 11;

  // Reference: the loop continuous_churn_test used before the engine.
  double ref_cluster = 0.0;
  double ref_stale = 0.0;
  {
    runtime::scenario world(cfg_for(seed, 0.6));
    world.run_periods(10);
    util::rng pick(99);
    for (int p = 0; p < 15; ++p) {
      std::vector<net::node_id> alive;
      for (std::size_t i = 0; i < world.peers().size(); ++i) {
        const auto id = static_cast<net::node_id>(i);
        if (world.transport().alive(id)) alive.push_back(id);
      }
      for (int k = 0; k < 5; ++k) {
        world.remove_peer(alive[pick.index(alive.size())]);
      }
      for (int k = 0; k < 5; ++k) world.add_peer();
      world.run_periods(1);
    }
    world.run_periods(10);
    const auto oracle = world.oracle();
    ref_cluster = metrics::measure_clusters(world.transport(), world.peers(),
                                            oracle)
                      .biggest_cluster_pct;
    ref_stale =
        metrics::measure_views(world.transport(), world.peers(), oracle)
            .stale_pct;
  }

  runtime::scenario world(cfg_for(seed, 0.6));
  const sim::sim_time P = world.config().gossip.shuffle_period;
  engine eng(world, program{}
                        .then(steady(10 * P))
                        .then(turnover(15 * P, 5, P, /*rng_seed=*/99))
                        .then(steady(10 * P)));
  eng.run();
  EXPECT_DOUBLE_EQ(ref_cluster, eng.final().clusters.biggest_cluster_pct);
  EXPECT_DOUBLE_EQ(ref_stale, eng.final().views.stale_pct);
}

}  // namespace
}  // namespace nylon::workload
