// Per-phase behaviour of the workload engine against real scenarios.
#include "workload/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/scenario.h"

namespace nylon::workload {
namespace {

runtime::experiment_config small_world(std::size_t peers, double natted,
                                       std::uint64_t seed) {
  runtime::experiment_config cfg;
  cfg.peer_count = peers;
  cfg.natted_fraction = natted;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = seed;
  return cfg;
}

sim::sim_time period(const runtime::scenario& world) {
  return world.config().gossip.shuffle_period;
}

TEST(engine_phases, steady_changes_nothing) {
  runtime::scenario world(small_world(60, 0.5, 1));
  const sim::sim_time P = period(world);
  engine eng(world, program{}.then(steady(10 * P)));
  eng.run();
  EXPECT_EQ(world.scheduler().now(), 10 * P);
  EXPECT_EQ(eng.joined(), 0u);
  EXPECT_EQ(eng.departed(), 0u);
  EXPECT_EQ(eng.final().alive, 60u);
  EXPECT_EQ(eng.final().at, 10 * P);
}

TEST(engine_phases, grow_adds_evenly_spaced_peers) {
  runtime::scenario world(small_world(40, 0.5, 2));
  const sim::sim_time P = period(world);
  engine_options opt;
  opt.sample_interval = 5 * P;
  opt.measure = false;  // population counters are enough here
  engine eng(world, program{}.then(grow(20, 10 * P)), opt);
  eng.run();
  EXPECT_EQ(eng.joined(), 20u);
  EXPECT_EQ(eng.final().alive, 60u);
  // Mid-phase sample sees roughly half the newcomers (spacing, not burst).
  const snapshot& mid = eng.trajectory()[1];  // samples at 0, 5P; end at 10P
  EXPECT_EQ(mid.at, 5 * P);
  EXPECT_GE(mid.alive, 48u);
  EXPECT_LE(mid.alive, 52u);
}

TEST(engine_phases, flash_crowd_joins_at_once) {
  runtime::scenario world(small_world(50, 0.6, 3));
  const sim::sim_time P = period(world);
  engine eng(world,
             program{}.then(flash_crowd(25)).then(steady(5 * P)));
  eng.run();
  EXPECT_EQ(eng.joined(), 25u);
  // The flash phase's own snapshot already sees everyone.
  EXPECT_EQ(eng.trajectory().front().alive, 75u);
  EXPECT_EQ(eng.trajectory().front().at, 0);
  // And the rookies integrate: they gossip within the steady window.
  std::size_t active_rookies = 0;
  for (std::size_t i = 50; i < 75; ++i) {
    if (world.peer_at(static_cast<net::node_id>(i)).stats().initiated > 0) {
      ++active_rookies;
    }
  }
  EXPECT_GT(active_rookies, 20u);
}

TEST(engine_phases, mass_departure_removes_fraction) {
  runtime::scenario world(small_world(100, 0.5, 4));
  const sim::sim_time P = period(world);
  engine eng(world, program{}
                        .then(steady(5 * P))
                        .then(mass_departure(0.3))
                        .then(steady(5 * P)));
  eng.run();
  EXPECT_EQ(eng.departed(), 30u);
  EXPECT_EQ(eng.final().alive, 70u);
}

TEST(engine_phases, poisson_churn_arrivals_and_departures) {
  runtime::scenario world(small_world(80, 0.5, 5));
  const sim::sim_time P = period(world);  // 5 s
  session_distribution sessions;
  sessions.mean = 4 * P;  // short sessions: departures happen in-window
  // ~1 arrival per period over 30 periods.
  auto prog = program{}.then(
      poisson_churn(30 * P, 1.0 / sim::to_seconds(P), sessions));
  engine eng(world, std::move(prog));
  eng.run();
  EXPECT_GT(eng.joined(), 10u);
  EXPECT_LT(eng.joined(), 60u);  // ~30 expected; generous both ways
  EXPECT_GT(eng.departed(), 5u);
  EXPECT_LE(eng.departed(), eng.joined());
  EXPECT_EQ(eng.final().alive, 80u + eng.joined() - eng.departed());
}

TEST(engine_phases, turnover_replaces_peers_every_tick) {
  runtime::scenario world(small_world(60, 0.5, 6));
  const sim::sim_time P = period(world);
  engine eng(world, program{}.then(turnover(10 * P, 3, P, 99)));
  eng.run();
  EXPECT_EQ(eng.joined(), 30u);  // 10 ticks x 3 joins
  EXPECT_LE(eng.departed(), 30u);
  EXPECT_GT(eng.departed(), 20u);  // few duplicate draws at n=60
  EXPECT_EQ(eng.final().alive, 60u + eng.joined() - eng.departed());
}

TEST(engine_phases, partition_splits_and_heal_reknits) {
  // All-public world: clusters are purely partition-driven.
  runtime::scenario world(small_world(60, 0.0, 7));
  const sim::sim_time P = period(world);
  engine eng(world, program{}
                        .then(steady(10 * P))
                        .then(partition(0.5))
                        .then(steady(10 * P))
                        .then(heal())
                        .then(steady(15 * P)));
  eng.run();
  const auto& traj = eng.trajectory();
  ASSERT_EQ(traj.size(), 5u);
  EXPECT_EQ(traj[0].clusters.cluster_count, 1u);  // warm overlay, one blob
  EXPECT_GE(traj[2].clusters.cluster_count, 2u);  // split world
  EXPECT_LE(traj[2].clusters.biggest_cluster_pct, 60.0);
  EXPECT_EQ(traj[4].clusters.cluster_count, 1u);  // healed and re-knit
  EXPECT_DOUBLE_EQ(traj[4].clusters.biggest_cluster_pct, 100.0);
  EXPECT_FALSE(world.transport().partitioned());
}

TEST(engine_phases, nat_redistribution_changes_future_joiners) {
  runtime::scenario world(small_world(40, 0.0, 8));
  const sim::sim_time P = period(world);
  // Newcomers after the redistribution are 100% symmetric-NATted.
  nat::nat_mix sym_only{0.0, 0.0, 0.0, 1.0};
  engine eng(world, program{}
                        .then(steady(2 * P))
                        .then(nat_redistribution(1.0, sym_only))
                        .then(flash_crowd(10)));
  eng.run();
  for (std::size_t i = 0; i < 40; ++i) {
    EXPECT_EQ(world.transport().type_of(static_cast<net::node_id>(i)),
              nat::nat_type::open);
  }
  for (std::size_t i = 40; i < 50; ++i) {
    EXPECT_EQ(world.transport().type_of(static_cast<net::node_id>(i)),
              nat::nat_type::symmetric);
  }
}

TEST(engine_phases, nat_rebind_refreshes_descriptors) {
  runtime::scenario world(small_world(50, 1.0, 9));
  const sim::sim_time P = period(world);
  std::vector<net::endpoint> before;
  for (std::size_t i = 0; i < 50; ++i) {
    before.push_back(
        world.transport().advertised_endpoint(static_cast<net::node_id>(i)));
  }
  engine eng(world, program{}
                        .then(steady(5 * P))
                        .then(nat_rebind(1.0))
                        .then(steady(1 * P)));
  eng.run();
  for (std::size_t i = 0; i < 50; ++i) {
    const auto id = static_cast<net::node_id>(i);
    const net::endpoint now = world.transport().advertised_endpoint(id);
    EXPECT_NE(now.ip, before[i].ip) << "peer " << i << " kept its old IP";
    // The peer's own descriptor followed the rebind (STUN refresh).
    EXPECT_EQ(world.peer_at(id).self().addr, now);
  }
}

TEST(engine_phases, nat_migration_swaps_live_peer_types_in_place) {
  // A fully cone-NATted world; the ISP swaps every box for symmetric.
  runtime::scenario world(small_world(50, 1.0, 13));
  const sim::sim_time P = period(world);
  std::vector<net::endpoint> before;
  for (std::size_t i = 0; i < 50; ++i) {
    before.push_back(
        world.transport().advertised_endpoint(static_cast<net::node_id>(i)));
  }
  engine eng(world, program{}
                        .then(steady(5 * P))
                        .then(nat_migration(1.0))  // default: all symmetric
                        .then(steady(1 * P)));
  eng.run();
  for (std::size_t i = 0; i < 50; ++i) {
    const auto id = static_cast<net::node_id>(i);
    // In-place: the same peer object, now living behind a symmetric box,
    // with the rebind upheaval applied and its descriptor refreshed.
    EXPECT_EQ(world.transport().type_of(id), nat::nat_type::symmetric);
    const net::endpoint now = world.transport().advertised_endpoint(id);
    EXPECT_NE(now.ip, before[i].ip) << "peer " << i << " kept its old IP";
    EXPECT_EQ(world.peer_at(id).self().addr, now);
    EXPECT_EQ(world.peer_at(id).self().type, nat::nat_type::symmetric);
  }
}

TEST(engine_phases, nat_migration_fraction_hits_only_that_many) {
  runtime::scenario world(small_world(60, 1.0, 17));
  const sim::sim_time P = period(world);
  engine eng(world, program{}
                        .then(steady(2 * P))
                        .then(nat_migration(0.5))
                        .then(steady(1 * P)));
  eng.run();
  std::size_t symmetric = 0;
  for (std::size_t i = 0; i < 60; ++i) {
    if (world.transport().type_of(static_cast<net::node_id>(i)) ==
        nat::nat_type::symmetric) {
      ++symmetric;
    }
  }
  // small_world's natted population draws the paper mix (10% SYM), so
  // pre-existing symmetric peers add sampling noise around the 30
  // migrated ones; the phase must dominate but not take everyone.
  EXPECT_GE(symmetric, 30u);
  EXPECT_LT(symmetric, 60u);
}

TEST(engine, program_runs_after_manual_warmup) {
  runtime::scenario world(small_world(30, 0.5, 10));
  const sim::sim_time P = period(world);
  world.run_periods(7);
  engine eng(world, program{}.then(steady(3 * P)));
  eng.run();
  EXPECT_EQ(world.scheduler().now(), 10 * P);
  EXPECT_EQ(eng.final().at, 10 * P);
}

TEST(engine, observer_sees_every_snapshot) {
  runtime::scenario world(small_world(30, 0.5, 11));
  const sim::sim_time P = period(world);
  engine_options opt;
  opt.sample_interval = P;
  engine eng(world, program{}.then(steady(5 * P)), opt);
  std::size_t seen = 0;
  eng.set_observer([&](const snapshot&) { ++seen; });
  eng.run();
  EXPECT_EQ(seen, eng.trajectory().size());
  EXPECT_EQ(seen, 6u);  // samples at 0..4P plus the phase-end snapshot
  // Snapshot times never go backwards.
  for (std::size_t i = 1; i < eng.trajectory().size(); ++i) {
    EXPECT_LE(eng.trajectory()[i - 1].at, eng.trajectory()[i].at);
  }
}

}  // namespace
}  // namespace nylon::workload
