#include "workload/program.h"

#include <gtest/gtest.h>

#include "util/contracts.h"
#include "util/rng.h"

namespace nylon::workload {
namespace {

TEST(program, factories_set_kind_and_label) {
  EXPECT_EQ(grow(10, 100).kind, phase_kind::grow);
  EXPECT_EQ(grow(10, 100).label, "grow");
  EXPECT_EQ(steady(100).kind, phase_kind::steady);
  EXPECT_EQ(poisson_churn(100, 2.0).kind, phase_kind::poisson_churn);
  EXPECT_EQ(flash_crowd(5).kind, phase_kind::flash_crowd);
  EXPECT_EQ(mass_departure(0.5).kind, phase_kind::mass_departure);
  EXPECT_EQ(turnover(100, 3, 10).kind, phase_kind::turnover);
  EXPECT_EQ(partition(0.5).kind, phase_kind::partition);
  EXPECT_EQ(heal().kind, phase_kind::heal);
  EXPECT_EQ(nat_redistribution(0.8, nat::paper_mix()).kind,
            phase_kind::nat_redistribution);
  EXPECT_EQ(nat_rebind(0.3).kind, phase_kind::nat_rebind);
  EXPECT_EQ(nat_migration(0.3).kind, phase_kind::nat_migration);
}

TEST(program, every_kind_has_a_name) {
  for (int k = 0; k <= static_cast<int>(phase_kind::nat_migration); ++k) {
    EXPECT_NE(to_string(static_cast<phase_kind>(k)), "?");
  }
}

TEST(program, then_validates_and_chains) {
  auto prog = program{}
                  .then(steady(100))
                  .then(mass_departure(0.5))
                  .then(steady(200));
  EXPECT_EQ(prog.phases().size(), 3u);
  EXPECT_EQ(prog.total_duration(), 300);
}

TEST(program, invalid_phases_throw) {
  EXPECT_THROW(program{}.then(grow(0, 100)), nylon::contract_error);
  EXPECT_THROW(program{}.then(steady(0)), nylon::contract_error);
  EXPECT_THROW(program{}.then(poisson_churn(100, 0.0)),
               nylon::contract_error);
  EXPECT_THROW(program{}.then(flash_crowd(0)), nylon::contract_error);
  EXPECT_THROW(program{}.then(mass_departure(1.5)), nylon::contract_error);
  EXPECT_THROW(program{}.then(turnover(100, 3, 0)), nylon::contract_error);
  EXPECT_THROW(program{}.then(partition(-0.1)), nylon::contract_error);
  EXPECT_THROW(program{}.then(nat_rebind(2.0)), nylon::contract_error);
  phase bad_redistribution;
  bad_redistribution.kind = phase_kind::nat_redistribution;
  bad_redistribution.natted_fraction = 0.5;  // but no mix
  EXPECT_THROW(program{}.then(bad_redistribution), nylon::contract_error);
}

TEST(session_distribution, fixed_is_exact) {
  session_distribution d;
  d.k = session_distribution::kind::fixed;
  d.mean = sim::seconds(120);
  util::rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(d.sample(rng), sim::seconds(120));
}

TEST(session_distribution, exponential_matches_mean) {
  session_distribution d;
  d.mean = sim::seconds(100);
  util::rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const sim::sim_time s = d.sample(rng);
    EXPECT_GE(s, 1);
    sum += static_cast<double>(s);
  }
  EXPECT_NEAR(sum / n, static_cast<double>(d.mean), 0.03 * d.mean);
}

TEST(session_distribution, pareto_matches_mean_and_is_heavy_tailed) {
  session_distribution d;
  d.k = session_distribution::kind::pareto;
  d.mean = sim::seconds(100);
  d.pareto_shape = 3.0;
  util::rng rng(7);
  double sum = 0.0;
  sim::sim_time longest = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const sim::sim_time s = d.sample(rng);
    EXPECT_GE(s, 1);
    sum += static_cast<double>(s);
    longest = std::max(longest, s);
  }
  EXPECT_NEAR(sum / n, static_cast<double>(d.mean), 0.05 * d.mean);
  // Heavy tail: some session far beyond the mean shows up.
  EXPECT_GT(longest, 5 * d.mean);
}

TEST(session_distribution, deterministic_per_seed) {
  session_distribution d;
  util::rng a(9);
  util::rng b(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(d.sample(a), d.sample(b));
}

}  // namespace
}  // namespace nylon::workload
