#include "nat/traversal.h"

#include <gtest/gtest.h>

#include <tuple>

namespace nylon::nat {
namespace {

using tt = traversal_technique;

// The exact table of §2.2 (rows: source; columns: target).
struct table_case {
  nat_type src;
  nat_type dst;
  tt expected;
};

const table_case paper_table[] = {
    // public source row
    {nat_type::open, nat_type::open, tt::direct},
    {nat_type::open, nat_type::restricted_cone, tt::hole_punching},
    {nat_type::open, nat_type::port_restricted_cone, tt::hole_punching},
    {nat_type::open, nat_type::symmetric, tt::relaying},
    // RC source row
    {nat_type::restricted_cone, nat_type::open, tt::direct},
    {nat_type::restricted_cone, nat_type::restricted_cone,
     tt::hole_punching},
    {nat_type::restricted_cone, nat_type::port_restricted_cone,
     tt::hole_punching},
    {nat_type::restricted_cone, nat_type::symmetric, tt::hole_punching},
    // PRC source row
    {nat_type::port_restricted_cone, nat_type::open, tt::direct},
    {nat_type::port_restricted_cone, nat_type::restricted_cone,
     tt::hole_punching},
    {nat_type::port_restricted_cone, nat_type::port_restricted_cone,
     tt::hole_punching},
    {nat_type::port_restricted_cone, nat_type::symmetric, tt::relaying},
    // SYM source row
    {nat_type::symmetric, nat_type::open, tt::direct},
    {nat_type::symmetric, nat_type::restricted_cone,
     tt::modified_hole_punching},
    {nat_type::symmetric, nat_type::port_restricted_cone, tt::relaying},
    {nat_type::symmetric, nat_type::symmetric, tt::relaying},
};

class traversal_table_test : public ::testing::TestWithParam<table_case> {};

TEST_P(traversal_table_test, matches_paper_cell) {
  const table_case& c = GetParam();
  EXPECT_EQ(technique_for(c.src, c.dst), c.expected)
      << to_string(c.src) << " -> " << to_string(c.dst);
}

INSTANTIATE_TEST_SUITE_P(
    paper_table, traversal_table_test, ::testing::ValuesIn(paper_table),
    [](const ::testing::TestParamInfo<table_case>& info) {
      return std::string(to_string(info.param.src)) + "_to_" +
             std::string(to_string(info.param.dst));
    });

TEST(traversal, full_cone_behaves_like_public_as_target) {
  for (const nat_type src :
       {nat_type::open, nat_type::full_cone, nat_type::restricted_cone,
        nat_type::port_restricted_cone, nat_type::symmetric}) {
    EXPECT_EQ(technique_for(src, nat_type::full_cone), tt::direct);
  }
}

TEST(traversal, full_cone_behaves_like_public_as_source) {
  for (const nat_type dst :
       {nat_type::open, nat_type::full_cone, nat_type::restricted_cone,
        nat_type::port_restricted_cone, nat_type::symmetric}) {
    EXPECT_EQ(technique_for(nat_type::full_cone, dst),
              technique_for(nat_type::open, dst));
  }
}

TEST(traversal, only_direct_needs_no_rvp) {
  EXPECT_FALSE(needs_rvp(tt::direct));
  EXPECT_TRUE(needs_rvp(tt::hole_punching));
  EXPECT_TRUE(needs_rvp(tt::modified_hole_punching));
  EXPECT_TRUE(needs_rvp(tt::relaying));
}

TEST(traversal, names_are_stable) {
  EXPECT_EQ(to_string(tt::direct), "direct");
  EXPECT_EQ(to_string(tt::hole_punching), "hole punching");
  EXPECT_EQ(to_string(tt::modified_hole_punching), "mod. hole punching");
  EXPECT_EQ(to_string(tt::relaying), "relaying");
}

}  // namespace
}  // namespace nylon::nat
