#include "nat/deployment.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>

#include "util/contracts.h"

namespace nylon::nat {
namespace {

std::map<nat_type, std::size_t> histogram(const std::vector<nat_type>& types) {
  std::map<nat_type, std::size_t> h;
  for (const nat_type t : types) ++h[t];
  return h;
}

TEST(deployment, exact_natted_count) {
  util::rng rng(1);
  for (const double fraction : {0.0, 0.1, 0.5, 0.77, 1.0}) {
    const auto types = assign_types(1000, fraction, paper_mix(), rng);
    EXPECT_EQ(natted_count(types),
              static_cast<std::size_t>(std::lround(1000 * fraction)));
  }
}

TEST(deployment, paper_mix_proportions) {
  util::rng rng(2);
  const auto types = assign_types(10000, 1.0, paper_mix(), rng);
  const auto h = histogram(types);
  EXPECT_EQ(h.at(nat_type::restricted_cone), 5000u);
  EXPECT_EQ(h.at(nat_type::port_restricted_cone), 4000u);
  EXPECT_EQ(h.at(nat_type::symmetric), 1000u);
  EXPECT_EQ(h.count(nat_type::open), 0u);
  EXPECT_EQ(h.count(nat_type::full_cone), 0u);
}

TEST(deployment, prc_only_mix) {
  util::rng rng(3);
  const auto types = assign_types(500, 0.6, prc_only_mix(), rng);
  const auto h = histogram(types);
  EXPECT_EQ(h.at(nat_type::port_restricted_cone), 300u);
  EXPECT_EQ(h.at(nat_type::open), 200u);
  EXPECT_EQ(h.count(nat_type::restricted_cone), 0u);
  EXPECT_EQ(h.count(nat_type::symmetric), 0u);
}

TEST(deployment, largest_remainder_handles_rounding) {
  util::rng rng(4);
  // 7 natted peers split 50/40/10 cannot be exact; totals must still add up.
  const auto types = assign_types(7, 1.0, paper_mix(), rng);
  EXPECT_EQ(types.size(), 7u);
  EXPECT_EQ(natted_count(types), 7u);
}

TEST(deployment, positions_are_shuffled) {
  util::rng rng(5);
  const auto types = assign_types(1000, 0.5, paper_mix(), rng);
  // If unshuffled, the first half would be all natted. Count natted peers
  // in the first half; it should be near 250, certainly not 500 or 0.
  std::size_t first_half = 0;
  for (std::size_t i = 0; i < 500; ++i) {
    if (is_natted(types[i])) ++first_half;
  }
  EXPECT_GT(first_half, 180u);
  EXPECT_LT(first_half, 320u);
}

TEST(deployment, deterministic_under_seed) {
  util::rng a(7);
  util::rng b(7);
  EXPECT_EQ(assign_types(300, 0.7, paper_mix(), a),
            assign_types(300, 0.7, paper_mix(), b));
}

TEST(deployment, invalid_fraction_throws) {
  util::rng rng(1);
  EXPECT_THROW(assign_types(10, -0.1, paper_mix(), rng),
               nylon::contract_error);
  EXPECT_THROW(assign_types(10, 1.1, paper_mix(), rng),
               nylon::contract_error);
}

TEST(deployment, mix_must_sum_to_one) {
  util::rng rng(1);
  nat_mix bad;
  bad.symmetric = 0.5;  // now sums to 1.4
  EXPECT_THROW(assign_types(10, 0.5, bad, rng), nylon::contract_error);
}

TEST(nat_type, predicates) {
  EXPECT_FALSE(is_natted(nat_type::open));
  EXPECT_TRUE(is_natted(nat_type::full_cone));
  EXPECT_TRUE(is_natted(nat_type::symmetric));
  EXPECT_TRUE(is_cone(nat_type::full_cone));
  EXPECT_TRUE(is_cone(nat_type::restricted_cone));
  EXPECT_TRUE(is_cone(nat_type::port_restricted_cone));
  EXPECT_FALSE(is_cone(nat_type::symmetric));
  EXPECT_FALSE(is_cone(nat_type::open));
}

TEST(nat_type, names) {
  EXPECT_EQ(to_string(nat_type::open), "public");
  EXPECT_EQ(to_string(nat_type::full_cone), "FC");
  EXPECT_EQ(to_string(nat_type::restricted_cone), "RC");
  EXPECT_EQ(to_string(nat_type::port_restricted_cone), "PRC");
  EXPECT_EQ(to_string(nat_type::symmetric), "SYM");
}

}  // namespace
}  // namespace nylon::nat
