// Differential test pinning the flat-table nat_device to the semantics of
// the original map-and-linear-scan implementation. The reference model
// below is a direct transcription of that code (unordered_map bindings,
// vector<filter_rule> scans, vector<sym_session> scans, port_owner map);
// both implementations are driven with identical operation streams —
// heavy on expiry boundaries (now == expires), session re-creation after
// expiry (port reuse), lapsed-binding rule clearing, and purges at
// arbitrary times — and must agree on every observable.
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <unordered_map>
#include <vector>

#include "nat/nat_device.h"
#include "util/rng.h"

namespace nylon::nat {
namespace {

/// The pre-optimization nat_device, kept verbatim (modulo naming) as the
/// semantic oracle.
class reference_device {
 public:
  reference_device(nat_type type, net::ip_address public_ip,
                   sim::sim_time hole_timeout)
      : type_(type), public_ip_(public_ip), hole_timeout_(hole_timeout) {}

  net::endpoint translate_outbound(const net::endpoint& private_src,
                                   const net::endpoint& remote,
                                   sim::sim_time now) {
    if (type_ == nat_type::symmetric) {
      auto& sessions = sym_[private_src];
      for (sym_session& s : sessions) {
        if (s.remote == remote && s.expires >= now) {
          s.expires = now + hole_timeout_;
          return {public_ip_, s.public_port};
        }
      }
      const std::uint32_t port = next_port_++;
      sessions.push_back(sym_session{remote, port, now + hole_timeout_});
      port_owner_.emplace(port, private_src);
      return {public_ip_, port};
    }
    cone_binding& binding = cone_bind(private_src, now);
    binding.expires = now + hole_timeout_;
    if (type_ != nat_type::full_cone) {
      const std::uint32_t rule_port =
          type_ == nat_type::port_restricted_cone ? remote.port : 0;
      auto rule = std::find_if(binding.rules.begin(), binding.rules.end(),
                               [&](const filter_rule& r) {
                                 return r.remote_ip == remote.ip &&
                                        r.remote_port == rule_port;
                               });
      if (rule == binding.rules.end()) {
        binding.rules.push_back(
            filter_rule{remote.ip, rule_port, now + hole_timeout_});
      } else {
        rule->expires = now + hole_timeout_;
      }
    }
    return {public_ip_, binding.public_port};
  }

  std::optional<net::endpoint> filter_inbound(const net::endpoint& public_dst,
                                              const net::endpoint& remote_src,
                                              sim::sim_time now) {
    const auto owner = port_owner_.find(public_dst.port);
    if (owner == port_owner_.end()) return std::nullopt;
    const net::endpoint private_dst = owner->second;
    if (type_ == nat_type::symmetric) {
      const auto sessions = sym_.find(private_dst);
      if (sessions == sym_.end()) return std::nullopt;
      for (sym_session& s : sessions->second) {
        if (s.public_port == public_dst.port && s.expires >= now &&
            s.remote == remote_src) {
          s.expires = now + hole_timeout_;
          return private_dst;
        }
      }
      return std::nullopt;
    }
    const auto binding_it = cone_.find(private_dst);
    if (binding_it == cone_.end()) return std::nullopt;
    cone_binding& binding = binding_it->second;
    if (binding.expires < now) return std::nullopt;
    if (type_ == nat_type::full_cone) {
      binding.expires = now + hole_timeout_;
      return private_dst;
    }
    for (filter_rule& rule : binding.rules) {
      if (rule.expires >= now &&
          rule_matches(remote_src.ip, remote_src.port, rule)) {
        rule.expires = now + hole_timeout_;
        binding.expires = now + hole_timeout_;
        return private_dst;
      }
    }
    return std::nullopt;
  }

  predicted_source would_translate(const net::endpoint& private_src,
                                   const net::endpoint& remote,
                                   sim::sim_time now) const {
    if (type_ == nat_type::symmetric) {
      const auto sessions = sym_.find(private_src);
      if (sessions != sym_.end()) {
        for (const sym_session& s : sessions->second) {
          if (s.remote == remote && s.expires >= now) {
            return {public_ip_, s.public_port};
          }
        }
      }
      return {public_ip_, std::nullopt};
    }
    const auto reserved = cone_port_.find(private_src);
    if (reserved != cone_port_.end()) return {public_ip_, reserved->second};
    return {public_ip_, std::nullopt};
  }

  std::optional<net::endpoint> would_accept(
      const net::endpoint& public_dst, net::ip_address src_ip,
      std::optional<std::uint32_t> src_port, sim::sim_time now) const {
    const auto owner = port_owner_.find(public_dst.port);
    if (owner == port_owner_.end()) return std::nullopt;
    const net::endpoint private_dst = owner->second;
    if (type_ == nat_type::symmetric) {
      const auto sessions = sym_.find(private_dst);
      if (sessions == sym_.end()) return std::nullopt;
      for (const sym_session& s : sessions->second) {
        if (s.public_port == public_dst.port && s.expires >= now &&
            s.remote.ip == src_ip && src_port.has_value() &&
            s.remote.port == *src_port) {
          return private_dst;
        }
      }
      return std::nullopt;
    }
    const auto binding_it = cone_.find(private_dst);
    if (binding_it == cone_.end()) return std::nullopt;
    const cone_binding& binding = binding_it->second;
    if (binding.expires < now) return std::nullopt;
    if (type_ == nat_type::full_cone) return private_dst;
    for (const filter_rule& rule : binding.rules) {
      if (rule.expires >= now &&
          (src_port.has_value()
               ? rule_matches(src_ip, *src_port, rule)
               : (type_ != nat_type::port_restricted_cone &&
                  src_ip == rule.remote_ip))) {
        return private_dst;
      }
    }
    return std::nullopt;
  }

  net::endpoint advertised_endpoint(const net::endpoint& private_src) {
    if (type_ == nat_type::symmetric) return {public_ip_, 0};
    return {public_ip_, reserve_cone_port(private_src)};
  }

  void purge_expired(sim::sim_time now) {
    for (auto& [ep, binding] : cone_) {
      std::erase_if(binding.rules,
                    [now](const filter_rule& r) { return r.expires < now; });
    }
    for (auto& [ep, sessions] : sym_) {
      std::erase_if(sessions, [&](const sym_session& s) {
        if (s.expires >= now) return false;
        port_owner_.erase(s.public_port);
        return true;
      });
    }
  }

  std::size_t active_rule_count(sim::sim_time now) const {
    std::size_t count = 0;
    for (const auto& [ep, binding] : cone_) {
      for (const filter_rule& rule : binding.rules) {
        if (rule.expires >= now) ++count;
      }
    }
    for (const auto& [ep, sessions] : sym_) {
      for (const sym_session& s : sessions) {
        if (s.expires >= now) ++count;
      }
    }
    return count;
  }

 private:
  struct filter_rule {
    net::ip_address remote_ip;
    std::uint32_t remote_port;
    sim::sim_time expires;
  };
  struct cone_binding {
    std::uint32_t public_port = 0;
    sim::sim_time expires = 0;
    std::vector<filter_rule> rules;
  };
  struct sym_session {
    net::endpoint remote;
    std::uint32_t public_port = 0;
    sim::sim_time expires = 0;
  };

  bool rule_matches(net::ip_address src_ip, std::uint32_t src_port,
                    const filter_rule& rule) const {
    if (src_ip != rule.remote_ip) return false;
    if (type_ == nat_type::port_restricted_cone) {
      return src_port == rule.remote_port;
    }
    return true;
  }

  std::uint32_t reserve_cone_port(const net::endpoint& private_src) {
    const auto it = cone_port_.find(private_src);
    if (it != cone_port_.end()) return it->second;
    const std::uint32_t port = next_port_++;
    cone_port_.emplace(private_src, port);
    port_owner_.emplace(port, private_src);
    return port;
  }

  cone_binding& cone_bind(const net::endpoint& private_src,
                          sim::sim_time now) {
    cone_binding& binding = cone_[private_src];
    if (binding.public_port == 0) {
      binding.public_port = reserve_cone_port(private_src);
    }
    if (binding.expires < now) binding.rules.clear();
    return binding;
  }

  nat_type type_;
  net::ip_address public_ip_;
  sim::sim_time hole_timeout_;
  std::uint32_t next_port_ = 1024;
  std::unordered_map<net::endpoint, std::uint32_t> cone_port_;
  std::unordered_map<net::endpoint, cone_binding> cone_;
  std::unordered_map<net::endpoint, std::vector<sym_session>> sym_;
  std::unordered_map<std::uint32_t, net::endpoint> port_owner_;
};

constexpr sim::sim_time timeout = sim::seconds(90);
const net::ip_address nat_ip{0x0A000001};
const net::endpoint priv{net::ip_address{0xAC100001}, 5000};

/// Drives both devices through an identical random operation stream and
/// checks every observable at every step. The time step distribution
/// lands exactly on expiry boundaries often (multiples of the timeout).
void run_equivalence(nat_type type, std::uint64_t seed) {
  util::rng r(seed);
  nat_device dut(type, nat_ip, timeout);
  reference_device ref(type, nat_ip, timeout);

  // A small remote universe so sessions and rules get reused and expire.
  const auto remote = [&](std::uint64_t i) {
    return net::endpoint{net::ip_address{0x0B000000 + std::uint32_t(i % 7)},
                         2000 + std::uint32_t(i % 5)};
  };

  // Known live public ports observed from translations; inbound probes
  // draw from these plus a few bogus ports.
  std::vector<std::uint32_t> seen_ports{0, 1023, 1024, 9999};

  sim::sim_time now = 0;
  for (int step = 0; step < 4000; ++step) {
    // Advance time; half the steps land exactly on an expiry boundary
    // (+timeout) or just around it, the nasty cases.
    switch (r.uniform(0, 4)) {
      case 0: now += timeout; break;
      case 1: now += timeout - 1; break;
      case 2: now += 1; break;
      default: now += static_cast<sim::sim_time>(r.uniform(0, 5000)); break;
    }

    switch (r.uniform(0, 4)) {
      case 0: {  // outbound packet
        const net::endpoint rem = remote(r.uniform(0, 34));
        const net::endpoint got = dut.translate_outbound(priv, rem, now);
        const net::endpoint want = ref.translate_outbound(priv, rem, now);
        ASSERT_EQ(got, want) << "step " << step;
        seen_ports.push_back(got.port);
        break;
      }
      case 1: {  // inbound packet
        const std::uint32_t port =
            seen_ports[r.index(seen_ports.size())];
        const net::endpoint rem = remote(r.uniform(0, 34));
        ASSERT_EQ(dut.filter_inbound({nat_ip, port}, rem, now),
                  ref.filter_inbound({nat_ip, port}, rem, now))
            << "step " << step;
        break;
      }
      case 2: {  // dry-run oracle queries
        const net::endpoint rem = remote(r.uniform(0, 34));
        const predicted_source a = dut.would_translate(priv, rem, now);
        const predicted_source b = ref.would_translate(priv, rem, now);
        ASSERT_EQ(a.ip, b.ip);
        ASSERT_EQ(a.port, b.port);
        const std::uint32_t port = seen_ports[r.index(seen_ports.size())];
        std::optional<std::uint32_t> src_port;
        if (r.bernoulli(0.8)) src_port = rem.port;
        ASSERT_EQ(dut.would_accept({nat_ip, port}, rem.ip, src_port, now),
                  ref.would_accept({nat_ip, port}, rem.ip, src_port, now))
            << "step " << step;
        break;
      }
      case 3: {  // STUN
        ASSERT_EQ(dut.advertised_endpoint(priv),
                  ref.advertised_endpoint(priv));
        break;
      }
      case 4: {  // maintenance at an arbitrary time
        dut.purge_expired(now);
        ref.purge_expired(now);
        break;
      }
    }
    ASSERT_EQ(dut.active_rule_count(now), ref.active_rule_count(now))
        << "step " << step;
  }
}

TEST(flat_nat_equivalence, full_cone) {
  run_equivalence(nat_type::full_cone, 11);
}
TEST(flat_nat_equivalence, restricted_cone) {
  run_equivalence(nat_type::restricted_cone, 22);
}
TEST(flat_nat_equivalence, port_restricted_cone) {
  run_equivalence(nat_type::port_restricted_cone, 33);
}
TEST(flat_nat_equivalence, symmetric) {
  run_equivalence(nat_type::symmetric, 44);
}

/// Port reuse: a symmetric session that expires and is re-created to the
/// same remote mints a fresh port, and the stale port stops routing.
TEST(flat_nat_equivalence, symmetric_port_reuse_after_expiry) {
  nat_device dev(nat_type::symmetric, nat_ip, timeout);
  const net::endpoint rem{net::ip_address{0x0B000001}, 2000};
  const net::endpoint first = dev.translate_outbound(priv, rem, 0);
  // Exactly at the boundary the session is still alive and refreshed.
  EXPECT_EQ(dev.translate_outbound(priv, rem, timeout).port, first.port);
  // One past the (refreshed) expiry: new session, new port.
  const net::endpoint second =
      dev.translate_outbound(priv, rem, 2 * timeout + 1);
  EXPECT_NE(second.port, first.port);
  // The stale port no longer routes; the fresh one does.
  EXPECT_FALSE(
      dev.filter_inbound({nat_ip, first.port}, rem, 2 * timeout + 1));
  EXPECT_TRUE(
      dev.filter_inbound({nat_ip, second.port}, rem, 2 * timeout + 1));
}

/// A lapsed cone binding clears its filter rules on the next outbound:
/// the old remote must re-earn its rule.
TEST(flat_nat_equivalence, lapsed_binding_drops_rules) {
  nat_device dev(nat_type::restricted_cone, nat_ip, timeout);
  const net::endpoint a{net::ip_address{0x0B000001}, 2000};
  const net::endpoint b{net::ip_address{0x0B000002}, 2000};
  const net::endpoint pub = dev.translate_outbound(priv, a, 0);
  EXPECT_TRUE(dev.filter_inbound(pub, a, timeout));  // boundary: alive
  // Binding lapses; a new outbound to b re-creates it without a's rule.
  const sim::sim_time later = 3 * timeout;
  EXPECT_EQ(dev.translate_outbound(priv, b, later), pub);  // stable port
  EXPECT_FALSE(dev.filter_inbound(pub, a, later));
  EXPECT_TRUE(dev.filter_inbound(pub, b, later));
}

}  // namespace
}  // namespace nylon::nat
