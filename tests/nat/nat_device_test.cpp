#include "nat/nat_device.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace nylon::nat {
namespace {

using net::endpoint;
using net::ip_address;

constexpr ip_address nat_ip{0x0A000001};
constexpr endpoint priv{ip_address{0xAC100001}, 5000};
constexpr endpoint remote_a{ip_address{0x0A000002}, 4000};
constexpr endpoint remote_a2{ip_address{0x0A000002}, 4001};  // same IP
constexpr endpoint remote_b{ip_address{0x0A000003}, 4000};
constexpr sim::sim_time timeout = sim::seconds(90);

nat_device make(nat_type t) { return nat_device(t, nat_ip, timeout); }

TEST(nat_device, rejects_open_type) {
  EXPECT_THROW(nat_device(nat_type::open, nat_ip, timeout),
               nylon::contract_error);
}

TEST(nat_device, rejects_nonpositive_timeout) {
  EXPECT_THROW(nat_device(nat_type::full_cone, nat_ip, 0),
               nylon::contract_error);
}

// --- mapping behaviour -------------------------------------------------------

class cone_mapping_test : public ::testing::TestWithParam<nat_type> {};

TEST_P(cone_mapping_test, same_public_port_for_all_destinations) {
  nat_device dev = make(GetParam());
  const endpoint m1 = dev.translate_outbound(priv, remote_a, 0);
  const endpoint m2 = dev.translate_outbound(priv, remote_b, 0);
  EXPECT_EQ(m1, m2);
  EXPECT_EQ(m1.ip, nat_ip);
}

TEST_P(cone_mapping_test, advertised_endpoint_matches_mapping) {
  nat_device dev = make(GetParam());
  const endpoint advertised = dev.advertised_endpoint(priv);
  const endpoint mapped = dev.translate_outbound(priv, remote_a, 0);
  EXPECT_EQ(advertised, mapped);
}

TEST_P(cone_mapping_test, distinct_private_endpoints_distinct_ports) {
  nat_device dev = make(GetParam());
  const endpoint other_priv{ip_address{0xAC100002}, 5000};
  const endpoint m1 = dev.translate_outbound(priv, remote_a, 0);
  const endpoint m2 = dev.translate_outbound(other_priv, remote_a, 0);
  EXPECT_NE(m1.port, m2.port);
}

INSTANTIATE_TEST_SUITE_P(cone_types, cone_mapping_test,
                         ::testing::Values(nat_type::full_cone,
                                           nat_type::restricted_cone,
                                           nat_type::port_restricted_cone));

TEST(nat_device, symmetric_fresh_port_per_destination) {
  nat_device dev = make(nat_type::symmetric);
  const endpoint m1 = dev.translate_outbound(priv, remote_a, 0);
  const endpoint m2 = dev.translate_outbound(priv, remote_b, 0);
  const endpoint m1_again = dev.translate_outbound(priv, remote_a, 0);
  EXPECT_NE(m1.port, m2.port);
  EXPECT_EQ(m1, m1_again);  // same session reuses its port
}

TEST(nat_device, symmetric_mapping_is_port_sensitive) {
  nat_device dev = make(nat_type::symmetric);
  const endpoint m1 = dev.translate_outbound(priv, remote_a, 0);
  const endpoint m2 = dev.translate_outbound(priv, remote_a2, 0);
  EXPECT_NE(m1.port, m2.port);  // different destination port = new session
}

TEST(nat_device, symmetric_advertises_port_zero) {
  nat_device dev = make(nat_type::symmetric);
  EXPECT_EQ(dev.advertised_endpoint(priv).port, 0u);
}

TEST(nat_device, symmetric_expired_session_gets_new_port) {
  nat_device dev = make(nat_type::symmetric);
  const endpoint m1 = dev.translate_outbound(priv, remote_a, 0);
  const endpoint m2 = dev.translate_outbound(priv, remote_a, timeout + 1);
  EXPECT_NE(m1.port, m2.port);
}

// --- filtering behaviour -----------------------------------------------------

TEST(nat_device, full_cone_forwards_from_anyone_while_bound) {
  nat_device dev = make(nat_type::full_cone);
  const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  EXPECT_EQ(dev.filter_inbound(pub, remote_b, 10), priv);
  EXPECT_EQ(dev.filter_inbound(pub, remote_a2, 10), priv);
}

TEST(nat_device, full_cone_drops_after_binding_expires) {
  nat_device dev = make(nat_type::full_cone);
  const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  EXPECT_EQ(dev.filter_inbound(pub, remote_b, timeout + 1), std::nullopt);
}

TEST(nat_device, restricted_cone_filters_by_ip_only) {
  nat_device dev = make(nat_type::restricted_cone);
  const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  // Same IP, different source port: allowed.
  EXPECT_EQ(dev.filter_inbound(pub, remote_a2, 10), priv);
  // Different IP: dropped.
  EXPECT_EQ(dev.filter_inbound(pub, remote_b, 10), std::nullopt);
}

TEST(nat_device, port_restricted_cone_filters_by_ip_and_port) {
  nat_device dev = make(nat_type::port_restricted_cone);
  const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  EXPECT_EQ(dev.filter_inbound(pub, remote_a, 10), priv);
  EXPECT_EQ(dev.filter_inbound(pub, remote_a2, 10), std::nullopt);
  EXPECT_EQ(dev.filter_inbound(pub, remote_b, 10), std::nullopt);
}

TEST(nat_device, symmetric_filters_by_exact_session) {
  nat_device dev = make(nat_type::symmetric);
  const endpoint pub_a = dev.translate_outbound(priv, remote_a, 0);
  const endpoint pub_b = dev.translate_outbound(priv, remote_b, 0);
  EXPECT_EQ(dev.filter_inbound(pub_a, remote_a, 10), priv);
  EXPECT_EQ(dev.filter_inbound(pub_b, remote_b, 10), priv);
  // Cross-session: the right peer on the wrong session port is dropped.
  EXPECT_EQ(dev.filter_inbound(pub_a, remote_b, 10), std::nullopt);
  EXPECT_EQ(dev.filter_inbound(pub_b, remote_a, 10), std::nullopt);
  // Same IP, different port than the session target: dropped.
  EXPECT_EQ(dev.filter_inbound(pub_a, remote_a2, 10), std::nullopt);
}

class filtering_expiry_test : public ::testing::TestWithParam<nat_type> {};

TEST_P(filtering_expiry_test, rule_expires_after_timeout) {
  nat_device dev = make(GetParam());
  const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  EXPECT_EQ(dev.filter_inbound(pub, remote_a, timeout), priv);
  nat_device dev2 = make(GetParam());
  const endpoint pub2 = dev2.translate_outbound(priv, remote_a, 0);
  EXPECT_EQ(dev2.filter_inbound(pub2, remote_a, timeout + 1), std::nullopt);
}

TEST_P(filtering_expiry_test, outbound_refreshes_rule) {
  nat_device dev = make(GetParam());
  endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  pub = dev.translate_outbound(priv, remote_a, timeout - 1);  // refresh
  EXPECT_EQ(dev.filter_inbound(pub, remote_a, 2 * timeout - 2), priv);
}

TEST_P(filtering_expiry_test, accepted_inbound_refreshes_rule) {
  nat_device dev = make(GetParam());
  const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  // A message received at t refreshes the rule to t + timeout (§2.1:
  // "after the last message was sent (or received)").
  EXPECT_EQ(dev.filter_inbound(pub, remote_a, timeout - 1), priv);
  EXPECT_EQ(dev.filter_inbound(pub, remote_a, 2 * timeout - 2), priv);
}

INSTANTIATE_TEST_SUITE_P(all_types, filtering_expiry_test,
                         ::testing::Values(nat_type::full_cone,
                                           nat_type::restricted_cone,
                                           nat_type::port_restricted_cone,
                                           nat_type::symmetric));

TEST(nat_device, unknown_port_dropped) {
  nat_device dev = make(nat_type::full_cone);
  EXPECT_EQ(dev.filter_inbound(endpoint{nat_ip, 9999}, remote_a, 0),
            std::nullopt);
}

TEST(nat_device, unsolicited_inbound_dropped) {
  nat_device dev = make(nat_type::restricted_cone);
  const endpoint advertised = dev.advertised_endpoint(priv);
  // Port reserved but no session has ever been opened.
  EXPECT_EQ(dev.filter_inbound(advertised, remote_a, 0), std::nullopt);
}

// --- dry-run parity ----------------------------------------------------------

class dry_run_test : public ::testing::TestWithParam<nat_type> {};

TEST_P(dry_run_test, would_translate_matches_actual_mapping) {
  nat_device dev = make(GetParam());
  const endpoint actual = dev.translate_outbound(priv, remote_a, 0);
  const predicted_source predicted = dev.would_translate(priv, remote_a, 1);
  EXPECT_EQ(predicted.ip, actual.ip);
  ASSERT_TRUE(predicted.port.has_value());
  EXPECT_EQ(*predicted.port, actual.port);
}

TEST_P(dry_run_test, would_accept_matches_filter_without_mutating) {
  nat_device dev = make(GetParam());
  const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  const std::size_t rules_before = dev.active_rule_count(1);
  const auto verdict_allowed =
      dev.would_accept(pub, remote_a.ip, remote_a.port, 1);
  const auto verdict_stranger =
      dev.would_accept(pub, ip_address{0x0A0000FF}, 1234, 1);
  EXPECT_TRUE(verdict_allowed.has_value());
  // Full cone forwards from anyone while bound; every other type must
  // reject a stranger.
  EXPECT_EQ(verdict_stranger.has_value(),
            GetParam() == nat_type::full_cone);
  EXPECT_EQ(dev.active_rule_count(1), rules_before);
}

INSTANTIATE_TEST_SUITE_P(all_types, dry_run_test,
                         ::testing::Values(nat_type::full_cone,
                                           nat_type::restricted_cone,
                                           nat_type::port_restricted_cone,
                                           nat_type::symmetric));

TEST(nat_device, symmetric_would_translate_unknown_for_fresh_session) {
  nat_device dev = make(nat_type::symmetric);
  const predicted_source predicted = dev.would_translate(priv, remote_a, 0);
  EXPECT_FALSE(predicted.port.has_value());
}

TEST(nat_device, unknown_source_port_only_passes_ip_level_filters) {
  // A fresh symmetric source has an unpredictable port: FC accepts, RC
  // accepts on IP match, PRC and SYM must reject.
  for (const nat_type type :
       {nat_type::full_cone, nat_type::restricted_cone,
        nat_type::port_restricted_cone, nat_type::symmetric}) {
    nat_device dev = make(type);
    const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
    const auto verdict =
        dev.would_accept(pub, remote_a.ip, std::nullopt, 1);
    const bool should_accept = type == nat_type::full_cone ||
                               type == nat_type::restricted_cone;
    EXPECT_EQ(verdict.has_value(), should_accept)
        << "type=" << to_string(type);
  }
}

// --- maintenance -------------------------------------------------------------

TEST(nat_device, purge_drops_expired_state) {
  nat_device dev = make(nat_type::port_restricted_cone);
  dev.translate_outbound(priv, remote_a, 0);
  dev.translate_outbound(priv, remote_b, 0);
  EXPECT_EQ(dev.active_rule_count(1), 2u);
  dev.purge_expired(timeout + 1);
  EXPECT_EQ(dev.active_rule_count(timeout + 1), 0u);
}

TEST(nat_device, purge_keeps_cone_port_reservation) {
  nat_device dev = make(nat_type::restricted_cone);
  const endpoint before = dev.translate_outbound(priv, remote_a, 0);
  dev.purge_expired(timeout * 2);
  const endpoint after = dev.translate_outbound(priv, remote_a, timeout * 2);
  // Real cone NATs tend to reuse the binding; we guarantee it so that
  // advertised endpoints stay valid (DESIGN.md).
  EXPECT_EQ(before, after);
}

TEST(nat_device, symmetric_purge_releases_session_ports) {
  nat_device dev = make(nat_type::symmetric);
  const endpoint pub = dev.translate_outbound(priv, remote_a, 0);
  dev.purge_expired(timeout + 1);
  EXPECT_EQ(dev.filter_inbound(pub, remote_a, timeout + 1), std::nullopt);
}

TEST(nat_device, binding_lapse_clears_rules) {
  nat_device dev = make(nat_type::restricted_cone);
  dev.translate_outbound(priv, remote_a, 0);
  // Much later, a new session opens; the old IP rule must be gone.
  const endpoint pub = dev.translate_outbound(priv, remote_b, 3 * timeout);
  EXPECT_EQ(dev.filter_inbound(pub, remote_a, 3 * timeout + 1), std::nullopt);
  EXPECT_EQ(dev.filter_inbound(pub, remote_b, 3 * timeout + 1), priv);
}

}  // namespace
}  // namespace nylon::nat
