// Adaptive conservative windows: epoch-width computation, lookahead
// providers, empty-shard striding, the latency-class API the lookahead
// is built from — and engine-level equality against static windows.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/latency.h"
#include "sim/shard_engine.h"
#include "util/contracts.h"
#include "util/rng.h"

namespace nylon::sim {
namespace {

/// A quiet schedule under static windows pays one epoch per W: events at
/// t = 0 and t = 10'000 with W = 10 cost ~1000 epochs. Adaptive strides
/// straight from one event horizon to the next.
TEST(adaptive_window, quiet_stretches_collapse_into_few_epochs) {
  shard_engine fixed(2, 10);
  shard_engine adaptive(2, 10, window_mode::adaptive);
  for (shard_engine* eng : {&fixed, &adaptive}) {
    int fired = 0;
    eng->shard_scheduler(0).at(0, [&fired] { ++fired; });
    eng->shard_scheduler(1).at(10000, [&fired] { ++fired; });
    eng->run_until(10000);
    EXPECT_EQ(fired, 2);
  }
  EXPECT_GE(fixed.epochs(), 1000u);
  EXPECT_LE(adaptive.epochs(), 4u);
  EXPECT_GE(adaptive.epoch_width_max(), 9000);
  EXPECT_GT(adaptive.epoch_width_mean(), fixed.epoch_width_mean());
}

/// With no events at all, one adaptive epoch crosses the whole span
/// (t_min = never >= bound), shards empty or not.
TEST(adaptive_window, empty_shards_cross_in_one_epoch) {
  shard_engine eng(3, 5, window_mode::adaptive);
  eng.run_until(100000);
  EXPECT_EQ(eng.now(), 100000);
  EXPECT_EQ(eng.epochs(), 1u);
  EXPECT_EQ(eng.epoch_width_max(), 100001);  // [0, 100000] inclusive
  EXPECT_EQ(eng.events_executed(), 0u);
}

/// The lookahead provider widens each stride beyond the static floor:
/// with events every 20 ms, W = 1 and lookahead L = 50, each epoch spans
/// t_min + 50 and so covers multiple event times.
TEST(adaptive_window, lookahead_provider_widens_epochs) {
  shard_engine narrow(2, 1, window_mode::adaptive);
  shard_engine wide(2, 1, window_mode::adaptive, [] { return sim_time{50}; });
  for (shard_engine* eng : {&narrow, &wide}) {
    int fired = 0;
    for (sim_time t = 0; t <= 200; t += 20) {
      eng->shard_scheduler(0).at(t, [&fired] { ++fired; });
    }
    eng->run_until(200);
    EXPECT_EQ(fired, 11);
  }
  // narrow: one epoch per event time (stride = t_min + 1);
  // wide: ~200/50 epochs, as each stride swallows two more event times.
  EXPECT_GT(narrow.epochs(), 2 * wide.epochs());
  EXPECT_GE(wide.epoch_width_max(), 50);
}

/// Identical posts through both policies: the staged lane makes the
/// delivery stream equal even though the adaptive run crosses in far
/// fewer epochs and drains several sends at one barrier.
TEST(adaptive_window, cross_shard_posts_replay_identically) {
  std::vector<std::int64_t> log_static;
  std::vector<std::int64_t> log_adaptive;
  std::uint64_t epochs_static = 0;
  std::uint64_t epochs_adaptive = 0;
  for (const window_mode mode :
       {window_mode::static_window, window_mode::adaptive}) {
    auto* log = mode == window_mode::adaptive ? &log_adaptive : &log_static;
    shard_engine eng(2, 10, mode);
    // Shard 0 emits a burst of cross-shard sends, all landing at the
    // same destination time from distinct send times — under static
    // windows they arrive over several drains, under adaptive in one.
    for (sim_time t = 0; t <= 40; t += 10) {
      eng.shard_scheduler(0).at(t, [&eng, t, log] {
        eng.post(0, 1, 100, 7, static_cast<std::uint64_t>(t),
                 [log, t] { log->push_back(100 + t); });
        eng.post(0, 1, 200 + t, 7, static_cast<std::uint64_t>(t),
                 [log, t] { log->push_back(200 + t); });
      });
    }
    eng.run_until(300);
    EXPECT_EQ(eng.events_executed(), 15u);
    (mode == window_mode::adaptive ? epochs_adaptive : epochs_static) =
        eng.epochs();
  }
  EXPECT_EQ(log_adaptive, log_static);
  EXPECT_LT(epochs_adaptive, epochs_static);
}

/// completed_through never passes the earliest still-running epoch start:
/// it is the floor the payload-lease sweep reclaims against.
TEST(adaptive_window, completed_through_trails_the_clock) {
  shard_engine eng(2, 10, window_mode::adaptive);
  EXPECT_EQ(eng.completed_through(), -1);
  int fired = 0;
  eng.shard_scheduler(0).at(500, [&fired] { ++fired; });
  eng.run_until(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_LE(eng.completed_through(), eng.now());
  EXPECT_GE(eng.completed_through(), 0);
}

// --- the latency-class API the transport's lookahead derives from ------------

TEST(adaptive_window, default_model_is_one_live_class) {
  net::fixed_latency fixed(50);
  EXPECT_EQ(fixed.class_count(), 1u);
  EXPECT_TRUE(fixed.class_live(0));
  EXPECT_EQ(fixed.class_min_delay(0), fixed.min_delay());
}

TEST(adaptive_window, lognormal_floor_is_the_millisecond_grid) {
  net::lognormal_latency model(50, 2.0);
  EXPECT_EQ(model.min_delay(), 1);
  EXPECT_EQ(model.class_min_delay(0), 1);
  util::rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(model.sample(rng), model.min_delay());
  }
}

TEST(adaptive_window, mixture_min_is_over_live_classes_only) {
  net::mixture_latency model({{sim::millis(5), 0.0},    // dead short class
                              {sim::millis(40), 0.7},
                              {sim::millis(150), 0.3}});
  EXPECT_EQ(model.class_count(), 3u);
  EXPECT_FALSE(model.class_live(0));
  EXPECT_TRUE(model.class_live(1));
  EXPECT_TRUE(model.class_live(2));
  // The dead 5 ms class must not drag the floor down.
  EXPECT_EQ(model.min_delay(), sim::millis(40));
  EXPECT_EQ(model.class_min_delay(0), sim::millis(5));

  util::rng rng(11);
  bool saw_far = false;
  for (int i = 0; i < 2000; ++i) {
    const sim_time d = model.sample(rng);
    EXPECT_TRUE(d == sim::millis(40) || d == sim::millis(150));
    saw_far = saw_far || d == sim::millis(150);
  }
  EXPECT_TRUE(saw_far);
}

TEST(adaptive_window, mixture_rejects_degenerate_configs) {
  EXPECT_THROW(net::mixture_latency({}), nylon::contract_error);
  EXPECT_THROW(net::mixture_latency({{-1, 1.0}}), nylon::contract_error);
  EXPECT_THROW(net::mixture_latency({{10, 0.0}}),  // no live class
               nylon::contract_error);
}

}  // namespace
}  // namespace nylon::sim
