#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/contracts.h"

namespace nylon::sim {
namespace {

TEST(event_queue, empty_initially) {
  event_queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), time_never);
}

TEST(event_queue, runs_in_time_order) {
  event_queue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(event_queue, fifo_among_equal_times) {
  event_queue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(event_queue, pop_returns_event_time) {
  event_queue q;
  q.push(17, [] {});
  EXPECT_EQ(q.pop_and_run(), 17);
}

TEST(event_queue, cancel_prevents_execution) {
  event_queue q;
  bool ran = false;
  auto handle = q.push(1, [&] { ran = true; });
  handle.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(event_queue, cancel_is_idempotent) {
  event_queue q;
  auto handle = q.push(1, [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(event_queue, cancelled_events_skipped_in_next_time) {
  event_queue q;
  auto early = q.push(1, [] {});
  q.push(9, [] {});
  early.cancel();
  EXPECT_EQ(q.next_time(), 9);
}

TEST(event_queue, executed_counter) {
  event_queue q;
  q.push(1, [] {});
  q.push(2, [] {});
  auto cancelled = q.push(3, [] {});
  cancelled.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(q.executed(), 2u);
}

TEST(event_queue, events_scheduled_during_execution) {
  event_queue q;
  std::vector<int> order;
  q.push(10, [&] {
    order.push_back(1);
    q.push(20, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(event_queue, pop_on_empty_throws) {
  event_queue q;
  EXPECT_THROW(q.pop_and_run(), nylon::contract_error);
}

TEST(event_queue, null_callback_rejected) {
  event_queue q;
  EXPECT_THROW(q.push(1, nullptr), nylon::contract_error);
}

TEST(event_handle, default_is_invalid) {
  event_handle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // must be safe
}

}  // namespace
}  // namespace nylon::sim
