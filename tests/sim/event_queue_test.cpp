#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <utility>
#include <vector>

#include "util/contracts.h"
#include "util/rng.h"

namespace nylon::sim {
namespace {

TEST(event_queue, empty_initially) {
  event_queue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.next_time(), time_never);
}

TEST(event_queue, runs_in_time_order) {
  event_queue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(event_queue, fifo_among_equal_times) {
  event_queue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop_and_run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(event_queue, pop_returns_event_time) {
  event_queue q;
  q.push(17, [] {});
  EXPECT_EQ(q.pop_and_run(), 17);
}

TEST(event_queue, cancel_prevents_execution) {
  event_queue q;
  bool ran = false;
  auto handle = q.push(1, [&] { ran = true; });
  handle.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(event_queue, cancel_is_idempotent) {
  event_queue q;
  auto handle = q.push(1, [] {});
  handle.cancel();
  handle.cancel();
  EXPECT_TRUE(q.empty());
}

TEST(event_queue, cancelled_events_skipped_in_next_time) {
  event_queue q;
  auto early = q.push(1, [] {});
  q.push(9, [] {});
  early.cancel();
  EXPECT_EQ(q.next_time(), 9);
}

TEST(event_queue, executed_counter) {
  event_queue q;
  q.push(1, [] {});
  q.push(2, [] {});
  auto cancelled = q.push(3, [] {});
  cancelled.cancel();
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(q.executed(), 2u);
}

TEST(event_queue, events_scheduled_during_execution) {
  event_queue q;
  std::vector<int> order;
  q.push(10, [&] {
    order.push_back(1);
    q.push(20, [&] { order.push_back(2); });
  });
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(event_queue, pop_on_empty_throws) {
  event_queue q;
  EXPECT_THROW(q.pop_and_run(), nylon::contract_error);
}

TEST(event_queue, null_callback_rejected) {
  event_queue q;
  EXPECT_THROW(q.push(1, nullptr), nylon::contract_error);
}

TEST(event_queue, empty_nullable_callables_rejected) {
  event_queue q;
  EXPECT_THROW(q.push(1, std::function<void()>{}), nylon::contract_error);
  void (*fn)() = nullptr;
  EXPECT_THROW(q.push(1, fn), nylon::contract_error);
  EXPECT_THROW(q.push(1, util::callback{}), nylon::contract_error);
  EXPECT_TRUE(q.empty());  // no orphaned slots or buckets
}

TEST(event_handle, default_is_invalid) {
  event_handle h;
  EXPECT_FALSE(h.valid());
  h.cancel();  // must be safe
}

TEST(event_handle, copies_share_cancellation) {
  event_queue q;
  bool ran = false;
  event_handle a = q.push(1, [&] { ran = true; });
  event_handle b = a;  // copy
  b.cancel();
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(event_handle, stale_handle_cannot_cancel_recycled_slot) {
  event_queue q;
  event_handle first = q.push(1, [] {});
  q.pop_and_run();  // slot recycled
  bool ran = false;
  q.push(2, [&] { ran = true; });  // very likely reuses the slot
  first.cancel();                  // must be inert (generation mismatch)
  while (!q.empty()) q.pop_and_run();
  EXPECT_TRUE(ran);
}

TEST(event_handle, cancel_after_queue_destroyed_is_safe) {
  event_handle h;
  {
    event_queue q;
    h = q.push(5, [] {});
  }
  h.cancel();  // must not touch freed memory
  EXPECT_TRUE(h.valid());
}

/// Differential stress test: the calendar-bucket queue must execute an
/// arbitrary interleaving of pushes, pops and cancellations in exactly
/// (time, insertion-seq) order — the ordering contract every simulation's
/// bit-reproducibility rests on.
TEST(event_queue, order_matches_reference_under_random_workload) {
  util::rng rng(99);
  event_queue q;
  std::vector<int> executed;                     // event ids, in run order
  std::vector<std::pair<sim_time, int>> live;    // reference: (time, id)
  std::vector<event_handle> handles;
  std::vector<int> handle_ids;
  int next_id = 0;
  sim_time now = 0;

  for (int step = 0; step < 5000; ++step) {
    const std::uint64_t op = rng.uniform(0, 9);
    if (op < 6) {  // push (ids increase in insertion order)
      const sim_time at = now + static_cast<sim_time>(rng.uniform(0, 40));
      const int id = next_id++;
      handles.push_back(q.push(at, [&executed, id] {
        executed.push_back(id);
      }));
      handle_ids.push_back(id);
      live.emplace_back(at, id);
    } else if (op < 8) {  // pop one (if any)
      if (!q.empty()) {
        const sim_time at = q.next_time();
        ASSERT_GE(at, now);
        now = at;
        q.pop_and_run();
        // Reference: earliest (time, id) — id order IS insertion order.
        const auto it = std::min_element(live.begin(), live.end());
        ASSERT_NE(it, live.end());
        ASSERT_EQ(executed.back(), it->second);
        ASSERT_EQ(at, it->first);
        live.erase(it);
      }
    } else {  // cancel a random outstanding handle
      if (!handles.empty()) {
        const std::size_t pick = rng.index(handles.size());
        handles[pick].cancel();
        const int id = handle_ids[pick];
        std::erase_if(live, [&](const auto& e) { return e.second == id; });
        handles.erase(handles.begin() +
                      static_cast<std::ptrdiff_t>(pick));
        handle_ids.erase(handle_ids.begin() +
                         static_cast<std::ptrdiff_t>(pick));
      }
    }
  }
  while (!q.empty()) {
    const auto it = std::min_element(live.begin(), live.end());
    q.pop_and_run();
    ASSERT_EQ(executed.back(), it->second);
    live.erase(it);
  }
  EXPECT_TRUE(live.empty());
}

}  // namespace
}  // namespace nylon::sim
