// Cross-shard transfer ordering: channels preserve FIFO until drained,
// the canonical sort is a total order on (at, order_a, order_b)
// independent of input permutation, and the shard engine's barriers
// schedule drained events into the destination exactly once, in
// canonical order, never inside the conservative window.
#include "sim/shard_channel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/shard_engine.h"
#include "util/contracts.h"

namespace nylon::sim {
namespace {

channel_event ev(sim_time at, std::uint64_t a, std::uint64_t b,
                 std::vector<int>* log, int tag) {
  return channel_event{at, a, b, [log, tag] { log->push_back(tag); }};
}

TEST(shard_channel, drain_preserves_fifo_push_order) {
  shard_channel ch;
  std::vector<int> log;
  ch.push(ev(5, 1, 1, &log, 1));
  ch.push(ev(3, 2, 1, &log, 2));
  ch.push(ev(5, 0, 9, &log, 3));
  EXPECT_EQ(ch.size(), 3u);

  std::vector<channel_event> out;
  ch.drain_into(out);
  EXPECT_TRUE(ch.empty());
  ASSERT_EQ(out.size(), 3u);
  // Drain order is push order; sorting is the caller's (barrier's) job.
  for (channel_event& e : out) e.fn();
  EXPECT_EQ(log, (std::vector<int>{1, 2, 3}));

  // The channel is reusable after a drain.
  ch.push(ev(1, 0, 0, &log, 4));
  EXPECT_EQ(ch.size(), 1u);
}

TEST(shard_channel, canonical_sort_is_permutation_independent) {
  std::vector<int> log;
  std::vector<channel_event> events;
  // Keys chosen so every comparison level matters: time first, then
  // order_a (sender), then order_b (sequence).
  events.push_back(ev(10, 2, 1, &log, 0));
  events.push_back(ev(10, 1, 2, &log, 1));
  events.push_back(ev(10, 1, 1, &log, 2));
  events.push_back(ev(9, 99, 99, &log, 3));
  events.push_back(ev(11, 0, 0, &log, 4));

  std::vector<int> first_order;
  std::vector<channel_event> sorted;
  for (std::size_t rotation = 0; rotation < events.size(); ++rotation) {
    sorted.clear();
    for (std::size_t i = 0; i < events.size(); ++i) {
      const channel_event& src =
          events[(i + rotation) % events.size()];
      sorted.push_back(channel_event{src.at, src.order_a, src.order_b,
                                     util::callback(nullptr)});
    }
    canonical_sort(sorted);
    std::vector<int> keys;
    for (const channel_event& e : sorted) {
      keys.push_back(static_cast<int>(e.at * 100 + e.order_a * 10 +
                                      e.order_b));
    }
    if (rotation == 0) {
      first_order = keys;
      EXPECT_EQ(keys.front(), 9 * 100 + 99 * 10 + 99);  // earliest time
    } else {
      EXPECT_EQ(keys, first_order) << "rotation " << rotation;
    }
  }
}

TEST(shard_engine, delivers_cross_shard_events_in_canonical_order) {
  shard_engine engine(3, /*window=*/10);
  std::vector<int> log;
  // Post out of order from several source shards to shard 1, all landing
  // at the same destination time — canonical (order_a, order_b) must
  // decide, not the post order or the source shard index.
  engine.post(2, 1, 25, /*a=*/7, /*b=*/1, [&log] { log.push_back(71); });
  engine.post(0, 1, 25, /*a=*/3, /*b=*/2, [&log] { log.push_back(32); });
  engine.post(1, 1, 25, /*a=*/3, /*b=*/1, [&log] { log.push_back(31); });
  engine.post(0, 1, 15, /*a=*/9, /*b=*/9, [&log] { log.push_back(99); });
  engine.run_until(30);
  EXPECT_EQ(log, (std::vector<int>{99, 31, 32, 71}));
  EXPECT_EQ(engine.now(), 30);
  EXPECT_EQ(engine.events_executed(), 4u);
}

TEST(shard_engine, post_inside_window_is_a_contract_violation) {
  shard_engine engine(2, /*window=*/10);
  engine.run_until(20);
  // An event strictly before the last barrier could causally precede
  // state still being computed; the engine refuses it. The barrier time
  // itself is the boundary case (minimum-latency send from an event on
  // the previous barrier) and is allowed.
  EXPECT_THROW(
      engine.post(0, 1, 19, 0, 0, [] {}),
      nylon::contract_error);
  engine.post(0, 1, 20, 0, 0, [] {});  // at the barrier: boundary, fine
  engine.post(0, 1, 21, 0, 0, [] {});  // strictly after: fine
  engine.run_until(30);
  EXPECT_EQ(engine.events_executed(), 2u);
}

TEST(shard_engine, run_until_now_executes_events_at_the_barrier) {
  shard_engine engine(2, /*window=*/5);
  engine.run_until(10);
  bool ran = false;
  // Control plane schedules at the barrier time itself (a freshly joined
  // peer with zero phase); a same-deadline run must execute it.
  engine.shard_scheduler(1).at(10, [&ran] { ran = true; });
  engine.run_until(10);
  EXPECT_TRUE(ran);
}

TEST(shard_engine, shards_advance_in_lockstep_epochs) {
  shard_engine engine(2, /*window=*/10);
  std::vector<sim_time> other_clock_at_delivery;
  // A ping-pong across shards: each delivery posts the next one. The
  // conservative window guarantees the peer shard's clock is never more
  // than one window behind the delivery time.
  engine.post(0, 1, 11, 0, 0, [&] {
    other_clock_at_delivery.push_back(engine.shard_scheduler(0).now());
    engine.post(1, 0, 22, 0, 0, [&] {
      other_clock_at_delivery.push_back(engine.shard_scheduler(1).now());
    });
  });
  engine.run_until(40);
  ASSERT_EQ(other_clock_at_delivery.size(), 2u);
  EXPECT_GE(other_clock_at_delivery[0], 11 - 10);
  EXPECT_GE(other_clock_at_delivery[1], 22 - 10);
  EXPECT_EQ(engine.now(), 40);
}

}  // namespace
}  // namespace nylon::sim
