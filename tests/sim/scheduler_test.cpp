#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "util/contracts.h"

namespace nylon::sim {
namespace {

TEST(scheduler, clock_starts_at_zero) {
  scheduler s;
  EXPECT_EQ(s.now(), 0);
  EXPECT_TRUE(s.idle());
}

TEST(scheduler, run_until_advances_clock_even_when_idle) {
  scheduler s;
  s.run_until(500);
  EXPECT_EQ(s.now(), 500);
}

TEST(scheduler, events_see_their_own_time) {
  scheduler s;
  sim_time seen = -1;
  s.at(120, [&] { seen = s.now(); });
  s.run_until(1000);
  EXPECT_EQ(seen, 120);
  EXPECT_EQ(s.now(), 1000);
}

TEST(scheduler, after_is_relative) {
  scheduler s;
  s.run_until(100);
  sim_time seen = -1;
  s.after(50, [&] { seen = s.now(); });
  s.run_until(1000);
  EXPECT_EQ(seen, 150);
}

TEST(scheduler, deadline_inclusive) {
  scheduler s;
  bool ran = false;
  s.at(100, [&] { ran = true; });
  s.run_until(100);
  EXPECT_TRUE(ran);
}

TEST(scheduler, events_beyond_deadline_stay_queued) {
  scheduler s;
  bool ran = false;
  s.at(101, [&] { ran = true; });
  s.run_until(100);
  EXPECT_FALSE(ran);
  EXPECT_FALSE(s.idle());
  s.run_until(101);
  EXPECT_TRUE(ran);
}

TEST(scheduler, scheduling_in_past_throws) {
  scheduler s;
  s.run_until(10);
  EXPECT_THROW(s.at(5, [] {}), nylon::contract_error);
  EXPECT_THROW(s.after(-1, [] {}), nylon::contract_error);
}

TEST(scheduler, periodic_fires_on_schedule) {
  scheduler s;
  std::vector<sim_time> fires;
  s.every(10, 25, [&] { fires.push_back(s.now()); });
  s.run_until(100);
  EXPECT_EQ(fires, (std::vector<sim_time>{10, 35, 60, 85}));
}

TEST(scheduler, periodic_cancel_stops_chain) {
  scheduler s;
  int count = 0;
  auto handle = s.every(0, 10, [&] { ++count; });
  s.run_until(35);
  EXPECT_EQ(count, 4);  // 0, 10, 20, 30
  handle.cancel();
  s.run_until(100);
  EXPECT_EQ(count, 4);
}

TEST(scheduler, periodic_cancel_from_inside_callback) {
  scheduler s;
  int count = 0;
  sim::event_handle handle = s.every(0, 10, [&] {
    if (++count == 3) handle.cancel();
  });
  s.run_until(1000);
  EXPECT_EQ(count, 3);
}

// Regression: cancelling an every() handle from inside its own callback
// and then *destroying the handle* while the chain's state is still on
// the scheduler stack must not use-after-free. The periodic state is kept
// alive by the chain's own shared_ptr, not by the handle.
TEST(scheduler, periodic_cancel_and_destroy_handle_inside_callback) {
  scheduler s;
  int count = 0;
  auto handle = std::make_unique<event_handle>();
  *handle = s.every(0, 10, [&] {
    if (++count == 2) {
      handle->cancel();
      handle.reset();  // the only external owner of the flag dies here
    }
  });
  s.run_until(1000);
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(s.idle());  // the chain really stopped rescheduling
}

// Cancelling after the scheduler (and its queue) are gone is documented
// as safe; the handle only flips its shared flag.
TEST(scheduler, cancel_outlives_scheduler) {
  event_handle handle;
  {
    scheduler s;
    handle = s.every(0, 10, [] {});
    s.run_until(25);
  }
  handle.cancel();  // must not touch freed queue memory
  EXPECT_TRUE(handle.valid());
}

// A cancelled chain must not leave a live hop in the queue: after the
// in-callback cancel, the queue drains completely.
TEST(scheduler, periodic_cancel_inside_callback_leaves_no_pending_hop) {
  scheduler s;
  int count = 0;
  event_handle handle = s.every(5, 10, [&] {
    ++count;
    handle.cancel();
  });
  s.run_until(5);  // exactly the first firing
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.idle());
  s.run_until(1000);
  EXPECT_EQ(count, 1);
}

TEST(scheduler, periodic_rejects_nonpositive_period) {
  scheduler s;
  EXPECT_THROW(s.every(0, 0, [] {}), nylon::contract_error);
}

TEST(scheduler, step_executes_single_event) {
  scheduler s;
  int count = 0;
  s.at(1, [&] { ++count; });
  s.at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(s.now(), 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(scheduler, events_executed_counter) {
  scheduler s;
  for (int i = 0; i < 5; ++i) s.at(i, [] {});
  s.run_until(10);
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(scheduler, interleaved_periodic_tasks_deterministic) {
  scheduler s;
  std::vector<int> order;
  s.every(0, 10, [&] { order.push_back(1); });
  s.every(0, 10, [&] { order.push_back(2); });
  s.run_until(25);
  // Same timestamps -> FIFO by insertion: 1 before 2 at every firing.
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

}  // namespace
}  // namespace nylon::sim
