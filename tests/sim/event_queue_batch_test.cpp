// Bulk-insert and staging-lane semantics of event_queue:
//  * push_sorted_batch is exactly N individual pushes (same pop order,
//    same times, same executed count) minus the per-event bucket lookup;
//  * stage_sorted's lane interleaves with the queue in timestamp order,
//    queue first at ties, canonical (at, order_a, order_b) order within
//    the lane regardless of how many stagings delivered the events.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/event_queue.h"
#include "util/contracts.h"

namespace nylon::sim {
namespace {

staged_event ev(sim_time at, std::uint64_t a, std::uint64_t b,
                std::vector<std::string>* log, std::string tag) {
  staged_event e;
  e.at = at;
  e.order_a = a;
  e.order_b = b;
  e.fn = [log, tag = std::move(tag)] { log->push_back(tag); };
  return e;
}

TEST(event_queue_batch, batch_matches_individual_pushes) {
  std::vector<std::string> log_single;
  std::vector<std::string> log_batch;

  // Duplicate timestamps on purpose: within a time, batch order must be
  // the FIFO order, exactly like repeated push() calls.
  const std::vector<sim_time> times = {5, 5, 7, 7, 7, 9, 12, 12};

  event_queue single;
  for (std::size_t i = 0; i < times.size(); ++i) {
    single.push(times[i], [&log_single, i] {
      log_single.push_back("e" + std::to_string(i));
    });
  }

  event_queue batched;
  std::vector<staged_event> batch;
  for (std::size_t i = 0; i < times.size(); ++i) {
    batch.push_back(
        ev(times[i], 0, 0, &log_batch, "e" + std::to_string(i)));
  }
  batched.push_sorted_batch(batch);
  EXPECT_TRUE(batch.empty());  // consumed, ready for recycling

  std::vector<sim_time> pops_single;
  std::vector<sim_time> pops_batch;
  while (!single.empty()) pops_single.push_back(single.pop_and_run());
  while (!batched.empty()) pops_batch.push_back(batched.pop_and_run());

  EXPECT_EQ(pops_batch, pops_single);
  EXPECT_EQ(log_batch, log_single);
  EXPECT_EQ(batched.executed(), single.executed());
}

TEST(event_queue_batch, batch_appends_fifo_after_existing_events) {
  std::vector<std::string> log;
  event_queue q;
  q.push(5, [&log] { log.push_back("old@5"); });
  q.push(9, [&log] { log.push_back("old@9"); });

  std::vector<staged_event> batch;
  batch.push_back(ev(5, 0, 0, &log, "new@5"));
  batch.push_back(ev(7, 0, 0, &log, "new@7"));
  batch.push_back(ev(9, 0, 0, &log, "new@9"));
  q.push_sorted_batch(batch);

  while (!q.empty()) q.pop_and_run();
  // Same-timestamp events run in insertion order: existing first.
  const std::vector<std::string> want = {"old@5", "new@5", "new@7", "old@9",
                                         "new@9"};
  EXPECT_EQ(log, want);
}

TEST(event_queue_batch, unsorted_batch_is_a_contract_violation) {
  std::vector<std::string> log;
  event_queue q;
  std::vector<staged_event> batch;
  batch.push_back(ev(9, 0, 0, &log, "a"));
  batch.push_back(ev(5, 0, 0, &log, "b"));  // time went backwards
  EXPECT_THROW(q.push_sorted_batch(batch), nylon::contract_error);
}

TEST(event_queue_batch, lane_interleaves_with_queue_local_first_at_ties) {
  std::vector<std::string> log;
  event_queue q;
  q.push(5, [&log] { log.push_back("q@5"); });
  q.push(7, [&log] { log.push_back("q@7"); });

  std::vector<staged_event> batch;
  batch.push_back(ev(4, 1, 0, &log, "lane@4"));
  batch.push_back(ev(5, 1, 0, &log, "lane@5"));
  batch.push_back(ev(6, 1, 0, &log, "lane@6"));
  q.stage_sorted(batch);
  EXPECT_TRUE(batch.empty());

  EXPECT_EQ(q.next_time(), 4);
  EXPECT_EQ(q.raw_size(), 5u);
  while (!q.empty()) q.pop_and_run();
  // Ties go to the queue: q@5 before lane@5.
  const std::vector<std::string> want = {"lane@4", "q@5", "lane@5", "lane@6",
                                         "q@7"};
  EXPECT_EQ(log, want);
  EXPECT_EQ(q.executed(), 5u);  // lane events count as executed events
}

TEST(event_queue_batch, lane_keeps_canonical_order_across_stagings) {
  // Two stagings whose key ranges overlap: the second merges into the
  // un-consumed remainder of the first, and execution follows canonical
  // (at, order_a, order_b) order as if all six arrived in one batch.
  std::vector<std::string> log;
  event_queue q;

  std::vector<staged_event> first;
  first.push_back(ev(10, 2, 1, &log, "t10:2.1"));
  first.push_back(ev(12, 1, 1, &log, "t12:1.1"));
  first.push_back(ev(14, 1, 1, &log, "t14:1.1"));
  q.stage_sorted(first);

  std::vector<staged_event> second;
  second.push_back(ev(10, 1, 2, &log, "t10:1.2"));
  second.push_back(ev(12, 1, 2, &log, "t12:1.2"));
  second.push_back(ev(12, 3, 1, &log, "t12:3.1"));
  q.stage_sorted(second);

  while (!q.empty()) q.pop_and_run();
  const std::vector<std::string> want = {"t10:1.2", "t10:2.1", "t12:1.1",
                                         "t12:1.2", "t12:3.1", "t14:1.1"};
  EXPECT_EQ(log, want);
}

TEST(event_queue_batch, lane_merges_into_partially_consumed_lane) {
  std::vector<std::string> log;
  event_queue q;

  std::vector<staged_event> first;
  first.push_back(ev(10, 1, 0, &log, "t10"));
  first.push_back(ev(20, 1, 0, &log, "t20"));
  q.stage_sorted(first);

  EXPECT_EQ(q.pop_and_run(), 10);  // consume half of the lane

  std::vector<staged_event> second;
  second.push_back(ev(15, 1, 0, &log, "t15"));
  second.push_back(ev(25, 1, 0, &log, "t25"));
  q.stage_sorted(second);

  while (!q.empty()) q.pop_and_run();
  const std::vector<std::string> want = {"t10", "t15", "t20", "t25"};
  EXPECT_EQ(log, want);
}

TEST(event_queue_batch, unsorted_staging_is_a_contract_violation) {
  std::vector<std::string> log;
  event_queue q;
  std::vector<staged_event> batch;
  batch.push_back(ev(5, 2, 0, &log, "a"));
  batch.push_back(ev(5, 1, 0, &log, "b"));  // canonical key went backwards
  EXPECT_THROW(q.stage_sorted(batch), nylon::contract_error);
}

TEST(event_queue_batch, consumed_lane_storage_is_recycled) {
  std::vector<std::string> log;
  event_queue q;

  std::vector<staged_event> batch;
  batch.reserve(64);
  batch.push_back(ev(10, 1, 0, &log, "a"));
  q.stage_sorted(batch);
  EXPECT_EQ(q.pop_and_run(), 10);

  // The lane was fully consumed, so the next staging swaps storage with
  // the retired lane instead of allocating: the caller's buffer comes
  // back with the old lane's capacity (>= 64 from our reserve above,
  // ping-ponged through the queue).
  batch.push_back(ev(20, 1, 0, &log, "b"));
  q.stage_sorted(batch);
  EXPECT_GE(batch.capacity() + q.lane_reserved_bytes() / sizeof(staged_event),
            64u);
  while (!q.empty()) q.pop_and_run();
  EXPECT_EQ(log.size(), 2u);
}

}  // namespace
}  // namespace nylon::sim
