// Trace recorder: span capture, ring overwrite accounting, thread
// tracks, and Trace Event JSON well-formedness (round-tripped through
// util::json::parse, the same parser Perfetto-bound CI validation uses
// in spirit). NYLON_OBS=0 builds still link every entry point; there
// recording is inert and the export is a valid empty document.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "util/json.h"

namespace nylon::obs {
namespace {

/// Busy-waits ~1us of trace clock so spans have observable durations.
void tiny_spin() {
  const std::uint64_t start = trace_now_us();
  while (trace_enabled() && trace_now_us() - start < 2) {
  }
}

TEST(obs_trace, disabled_by_default_and_spans_are_noops) {
  start_trace();  // clear anything an earlier test in this process left
  stop_trace();
  EXPECT_FALSE(trace_enabled());
  { const trace_span span("ignored"); }
  EXPECT_EQ(trace_statistics().recorded, 0u);
  const util::json doc = trace_to_json();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("traceEvents").size(), 0u);
}

TEST(obs_trace, records_spans_and_exports_trace_event_json) {
  start_trace();
  if (!trace_enabled()) {  // NYLON_OBS=0: start is a no-op
    const util::json doc = trace_to_json();
    EXPECT_EQ(doc.at("traceEvents").size(), 0u);
    return;
  }
  set_thread_track(42, "test-track");
  {
    const trace_span literal("alpha");
    tiny_spin();
  }
  {
    const trace_span dynamic(std::string_view(std::string("beta-") + "dyn"));
    tiny_spin();
  }
  stop_trace();

  // Round-trip through the serializer and parser: the document a viewer
  // loads is exactly what parse sees.
  const util::json doc = util::json::parse(trace_to_json().dump_string(0));
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const util::json& events = doc.at("traceEvents");
  ASSERT_TRUE(events.is_array());
  bool saw_meta = false;
  bool saw_alpha = false;
  bool saw_beta = false;
  for (const util::json& ev : events.array_items()) {
    const std::string& ph = ev.at("ph").as_string();
    EXPECT_EQ(ev.at("pid").as_int(), 1);
    if (ph == "M") {
      EXPECT_EQ(ev.at("name").as_string(), "thread_name");
      if (ev.at("args").at("name").as_string() == "test-track") {
        EXPECT_EQ(ev.at("tid").as_int(), 42);
        saw_meta = true;
      }
      continue;
    }
    ASSERT_EQ(ph, "X");
    EXPECT_TRUE(ev.at("ts").is_int());
    EXPECT_TRUE(ev.at("dur").is_int());
    if (ev.at("name").as_string() == "alpha") saw_alpha = true;
    if (ev.at("name").as_string() == "beta-dyn") saw_beta = true;
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_alpha);
  EXPECT_TRUE(saw_beta);
}

TEST(obs_trace, full_ring_overwrites_oldest_and_counts_drops) {
  start_trace(/*ring_capacity=*/4);
  if (!trace_enabled()) return;  // NYLON_OBS=0
  for (int i = 0; i < 10; ++i) {
    record_span("span", static_cast<std::uint64_t>(i), 1);
  }
  stop_trace();
  const trace_stats stats = trace_statistics();
  EXPECT_EQ(stats.recorded, 4u);
  EXPECT_EQ(stats.dropped, 6u);
  // The survivors are the *newest* four spans (ts 6..9).
  const util::json doc = trace_to_json();
  for (const util::json& ev : doc.at("traceEvents").array_items()) {
    if (ev.at("ph").as_string() != "X") continue;
    EXPECT_GE(ev.at("ts").as_int(), 6);
  }
}

TEST(obs_trace, each_thread_gets_its_own_track) {
  start_trace();
  if (!trace_enabled()) return;  // NYLON_OBS=0
  { const trace_span span("main-span"); }
  std::thread worker([] {
    set_thread_track(7, "worker-track");
    const trace_span span("worker-span");
  });
  worker.join();
  stop_trace();
  bool worker_on_7 = false;
  const util::json doc = trace_to_json();
  for (const util::json& ev : doc.at("traceEvents").array_items()) {
    if (ev.at("ph").as_string() == "X" &&
        ev.at("name").as_string() == "worker-span") {
      worker_on_7 = ev.at("tid").as_int() == 7;
    }
  }
  EXPECT_TRUE(worker_on_7);
}

TEST(obs_trace, counter_samples_export_as_counter_events) {
  start_trace();
  if (!trace_enabled()) {  // NYLON_OBS=0: record_counter is inert
    record_counter("timeline/x", 0, 1.0);
    EXPECT_EQ(trace_statistics().counters_recorded, 0u);
    return;
  }
  record_counter("timeline/alive_count", 10, 60.0);
  record_counter("timeline/biggest_cluster_pct", 10, 97.5);
  record_counter("timeline/alive_count", 20, 59.0);
  stop_trace();
  EXPECT_EQ(trace_statistics().counters_recorded, 3u);

  // Round-trip through the serializer and parser: the "ph":"C" events a
  // Perfetto viewer loads are exactly what parse sees.
  const util::json doc = util::json::parse(trace_to_json().dump_string(0));
  std::size_t counters = 0;
  bool saw_pct = false;
  std::int64_t last_alive_ts = -1;
  for (const util::json& ev : doc.at("traceEvents").array_items()) {
    if (ev.at("ph").as_string() != "C") continue;
    ++counters;
    EXPECT_EQ(ev.at("pid").as_int(), 1);
    EXPECT_TRUE(ev.at("ts").is_int());
    const util::json& args = ev.at("args");
    ASSERT_TRUE(args.is_object());
    ASSERT_EQ(args.size(), 1u);
    if (ev.at("name").as_string() == "timeline/biggest_cluster_pct") {
      EXPECT_DOUBLE_EQ(args.at("value").as_double(), 97.5);
      saw_pct = true;
    }
    if (ev.at("name").as_string() == "timeline/alive_count") {
      EXPECT_GT(ev.at("ts").as_int(), last_alive_ts);  // time-ordered
      last_alive_ts = ev.at("ts").as_int();
    }
  }
  EXPECT_EQ(counters, 3u);
  EXPECT_TRUE(saw_pct);
}

TEST(obs_trace, counter_ring_overwrites_oldest_and_counts_drops) {
  start_trace(/*ring_capacity=*/4);
  if (!trace_enabled()) return;  // NYLON_OBS=0
  for (int i = 0; i < 10; ++i) {
    record_counter("timeline/x", static_cast<std::uint64_t>(i),
                   static_cast<double>(i));
  }
  stop_trace();
  const trace_stats stats = trace_statistics();
  EXPECT_EQ(stats.counters_recorded, 4u);
  EXPECT_EQ(stats.counters_dropped, 6u);
  // The survivors are the *newest* four samples (ts 6..9), and counter
  // drops are accounted separately from span drops.
  EXPECT_EQ(stats.dropped, 0u);
  const util::json doc = trace_to_json();
  for (const util::json& ev : doc.at("traceEvents").array_items()) {
    if (ev.at("ph").as_string() != "C") continue;
    EXPECT_GE(ev.at("ts").as_int(), 6);
  }
}

TEST(obs_trace, restart_clears_previous_spans) {
  start_trace();
  if (!trace_enabled()) return;  // NYLON_OBS=0
  record_span("old", 0, 1);
  start_trace();  // restart: old contents must not leak into the export
  record_span("new", 0, 1);
  stop_trace();
  const util::json doc = trace_to_json();
  for (const util::json& ev : doc.at("traceEvents").array_items()) {
    if (ev.at("ph").as_string() != "X") continue;
    EXPECT_EQ(ev.at("name").as_string(), "new");
  }
}

}  // namespace
}  // namespace nylon::obs
