// Message lifecycle flight recorder: deterministic tag sampling,
// per-message hop grouping in the JSON export, ring-overwrite drop
// accounting, and the human-readable dump naming drop reasons. Every
// entry point still links in NYLON_OBS=0 builds — there the recorder
// never enables, no message is tagged, and the export is a valid empty
// document.
#include "obs/msglog.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "util/json.h"

namespace nylon::obs {
namespace {

TEST(obs_msglog, disabled_by_default_and_tags_are_zero) {
  msglog_stop();
  EXPECT_FALSE(msglog_enabled());
  EXPECT_EQ(msglog_tag(7, 3, 1000), 0u);
  // Recording while off is a no-op, not a crash.
  msglog_record(hop_record{1, 0, 0, 0, hop_kind::send, "PING", nullptr});
}

TEST(obs_msglog, names_are_stable) {
  EXPECT_EQ(to_string(hop_kind::send), "send");
  EXPECT_EQ(to_string(hop_kind::nat_translate), "nat_translate");
  EXPECT_EQ(to_string(hop_kind::drop), "drop");
  EXPECT_EQ(to_string(hop_kind::deliver), "deliver");
}

TEST(obs_msglog, sampling_is_a_pure_function_of_send_facts) {
  msglog_start(/*sample_one_in=*/1);
  if (!msglog_enabled()) return;  // NYLON_OBS=0
  const std::uint64_t tag = msglog_tag(42, 17, 5000);
  EXPECT_NE(tag, 0u);
  EXPECT_EQ(tag & 1u, 1u);  // 0 is reserved for "unsampled"
  // Same facts, same tag — the property that lets serial and sharded
  // engines sample the identical message set.
  EXPECT_EQ(msglog_tag(42, 17, 5000), tag);
  EXPECT_NE(msglog_tag(42, 18, 5000), tag);
  // At a coarse rate most messages are unsampled, and the decision for
  // one message never changes across calls.
  msglog_start(/*sample_one_in=*/1000);
  std::size_t sampled = 0;
  for (std::uint64_t ordinal = 0; ordinal < 2000; ++ordinal) {
    const std::uint64_t t = msglog_tag(42, ordinal, 5000);
    if (t != 0) ++sampled;
    EXPECT_EQ(msglog_tag(42, ordinal, 5000), t);
  }
  EXPECT_LT(sampled, 30u);  // ~2 expected from 2000 at 1-in-1000
  msglog_stop();
}

TEST(obs_msglog, hops_group_per_message_ordered_by_first_hop_time) {
  msglog_start(/*sample_one_in=*/1);
  if (!msglog_enabled()) return;  // NYLON_OBS=0
  // Two sampled messages, hops interleaved in time: the late message's
  // punch PING dies in a symmetric NAT's filter.
  msglog_record({0xA1, 1000, 3, 9, hop_kind::send, "REQUEST", nullptr});
  msglog_record({0xB3, 1200, 5, 8, hop_kind::nat_translate, "PING", nullptr});
  msglog_record({0xB3, 1200, 5, 8, hop_kind::send, "PING", nullptr});
  msglog_record({0xA1, 1050, 3, 9, hop_kind::deliver, "REQUEST", nullptr});
  msglog_record({0xB3, 1250, 5, 8, hop_kind::drop, "PING", "nat_filtered"});
  msglog_stop();

  const util::json doc = msglog_to_json();
  ASSERT_EQ(doc.at("messages").size(), 2u);
  const util::json& request = doc.at("messages").at(0);  // earlier first hop
  EXPECT_EQ(request.at("msg").as_string(), "REQUEST");
  EXPECT_EQ(request.at("from").as_int(), 3);
  ASSERT_EQ(request.at("hops").size(), 2u);
  EXPECT_EQ(request.at("hops").at(0).at("hop").as_string(), "send");
  EXPECT_EQ(request.at("hops").at(1).at("hop").as_string(), "deliver");

  const util::json& ping = doc.at("messages").at(1);
  EXPECT_EQ(ping.at("msg").as_string(), "PING");
  ASSERT_EQ(ping.at("hops").size(), 3u);
  // Same-millisecond hops keep recording order (translate before send).
  EXPECT_EQ(ping.at("hops").at(0).at("hop").as_string(), "nat_translate");
  EXPECT_EQ(ping.at("hops").at(1).at("hop").as_string(), "send");
  const util::json& last = ping.at("hops").at(2);
  EXPECT_EQ(last.at("hop").as_string(), "drop");
  EXPECT_EQ(last.at("note").as_string(), "nat_filtered");
}

TEST(obs_msglog, full_ring_overwrites_oldest_and_counts_drops) {
  msglog_start(/*sample_one_in=*/1, /*ring_capacity=*/4);
  if (!msglog_enabled()) return;  // NYLON_OBS=0
  for (std::int64_t i = 0; i < 10; ++i) {
    msglog_record({0xC0DE, i, 1, 2, hop_kind::send, "PING", nullptr});
  }
  msglog_stop();
  const msglog_stats stats = msglog_statistics();
  EXPECT_EQ(stats.recorded, 4u);
  EXPECT_EQ(stats.dropped, 6u);
  EXPECT_EQ(stats.threads, 1u);
  // The survivors are the newest four hops (t 6..9 ms), and the export
  // reports the eviction count.
  const util::json doc = msglog_to_json();
  EXPECT_EQ(doc.at("dropped").as_int(), 6);
  ASSERT_EQ(doc.at("messages").size(), 1u);
  for (const util::json& hop :
       doc.at("messages").at(0).at("hops").array_items()) {
    EXPECT_GE(hop.at("t_s").as_double(), 0.006 - 1e-9);
  }
}

TEST(obs_msglog, restart_clears_previous_recording) {
  msglog_start(/*sample_one_in=*/1);
  if (!msglog_enabled()) return;  // NYLON_OBS=0
  msglog_record({0xD1, 0, 1, 2, hop_kind::send, "PING", nullptr});
  msglog_start(/*sample_one_in=*/1);  // restart: old hops must not leak
  msglog_record({0xD2, 0, 3, 4, hop_kind::send, "PONG", nullptr});
  msglog_stop();
  const util::json doc = msglog_to_json();
  ASSERT_EQ(doc.at("messages").size(), 1u);
  EXPECT_EQ(doc.at("messages").at(0).at("msg").as_string(), "PONG");
  EXPECT_EQ(msglog_statistics().dropped, 0u);
}

TEST(obs_msglog, dump_names_the_drop_reason) {
  msglog_start(/*sample_one_in=*/1);
  std::ostringstream out;
  if (!msglog_enabled()) {  // NYLON_OBS=0: dump still writes a header
    msglog_dump(out);
    EXPECT_NE(out.str().find("msglog"), std::string::npos);
    return;
  }
  msglog_record({0xE5, 2000, 11, 4, hop_kind::send, "PING", nullptr});
  msglog_record({0xE5, 2050, 11, 4, hop_kind::drop, "PING", "nat_filtered"});
  msglog_stop();
  msglog_dump(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("PING"), std::string::npos);
  EXPECT_NE(text.find("drop@"), std::string::npos);
  EXPECT_NE(text.find("(nat_filtered)"), std::string::npos);
}

}  // namespace
}  // namespace nylon::obs
