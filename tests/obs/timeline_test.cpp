// Timeline recorder storage: sample accumulation, JSON shape, long-form
// CSV, and the Perfetto counter-track mirror (inert while tracing is
// off). The recorder is plain data, so everything here passes unchanged
// in NYLON_OBS=0 builds except the live trace mirror, which is gated.
#include "obs/timeline.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "util/json.h"

namespace nylon::obs {
namespace {

TEST(obs_timeline, records_rows_and_exports_json_samples) {
  timeline_recorder rec(5.0, {"alive_count", "biggest_cluster_pct"});
  EXPECT_TRUE(rec.empty());
  rec.append(5.0, {60.0, 100.0});
  rec.append(10.0, {58.0, 96.55});
  EXPECT_EQ(rec.sample_count(), 2u);
  EXPECT_DOUBLE_EQ(rec.period_s(), 5.0);

  const util::json samples = rec.samples_json();
  ASSERT_TRUE(samples.is_array());
  ASSERT_EQ(samples.size(), 2u);
  ASSERT_EQ(samples.at(0).size(), 3u);  // t_s + one value per column
  EXPECT_DOUBLE_EQ(samples.at(0).at(0).as_double(), 5.0);
  EXPECT_DOUBLE_EQ(samples.at(0).at(1).as_double(), 60.0);
  EXPECT_DOUBLE_EQ(samples.at(1).at(2).as_double(), 96.55);
}

TEST(obs_timeline, csv_is_long_form_with_cell_and_seed) {
  const std::vector<std::string> columns = {"alive_count", "drop_count.total"};
  timeline_recorder rec(2.5, columns);
  rec.append(2.5, {100.0, 0.0});
  rec.append(5.0, {97.0, 12.0});

  std::ostringstream out;
  timeline_recorder::write_csv_header(out, columns);
  rec.write_csv(out, "50/nylon", 3);
  EXPECT_EQ(out.str(),
            "cell,seed,t_s,alive_count,drop_count.total\n"
            "50/nylon,3,2.5,100,0\n"
            "50/nylon,3,5,97,12\n");
}

TEST(obs_timeline, counter_tracks_empty_while_tracing_off) {
  start_trace();
  stop_trace();
  // Tracing off: no track names are interned and the mirror is a no-op.
  const std::vector<const char*> tracks =
      counter_track_names({"alive_count"});
  EXPECT_TRUE(tracks.empty());
  record_counter_samples(tracks, {60.0});
  EXPECT_EQ(trace_statistics().counters_recorded, 0u);
}

TEST(obs_timeline, counter_tracks_mirror_samples_while_tracing) {
  start_trace();
  if (!trace_enabled()) return;  // NYLON_OBS=0
  const std::vector<const char*> tracks =
      counter_track_names({"alive_count", "obs.arena_bytes_peak"});
  ASSERT_EQ(tracks.size(), 2u);
  EXPECT_STREQ(tracks[0], "timeline/alive_count");
  EXPECT_STREQ(tracks[1], "timeline/obs.arena_bytes_peak");
  record_counter_samples(tracks, {60.0, 4096.0});
  stop_trace();
  EXPECT_EQ(trace_statistics().counters_recorded, 2u);
  bool saw_alive = false;
  const util::json doc = trace_to_json();
  for (const util::json& ev : doc.at("traceEvents").array_items()) {
    if (ev.at("ph").as_string() != "C") continue;
    if (ev.at("name").as_string() == "timeline/alive_count") {
      EXPECT_DOUBLE_EQ(ev.at("args").at("value").as_double(), 60.0);
      saw_alive = true;
    }
  }
  EXPECT_TRUE(saw_alive);
}

}  // namespace
}  // namespace nylon::obs
