// The observability half of the determinism contract (DESIGN.md
// "Observability & the determinism contract"): telemetry is observation
// only, so the state digest of one universe is byte-identical whether
// counters are reset mid-run, a trace is recording, or the run is
// sharded — and the NYLON_OBS=0 build of this same test proves the
// compiled-out configuration against the same pinned value the CI
// cross-build check uses.
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/counters.h"
#include "obs/trace.h"
#include "runtime/experiment_config.h"
#include "runtime/scenario.h"
#include "workload/engine.h"

namespace nylon {
namespace {

struct run_result {
  std::uint64_t digest = 0;
  std::uint64_t events = 0;
};

/// One paper-shaped universe at n=2000: warm-up, NAT rebind, churn.
run_result run_world(std::size_t shards, bool traced) {
  if (traced) obs::start_trace();
  runtime::experiment_config cfg;
  cfg.peer_count = 2000;
  cfg.natted_fraction = 0.6;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 8;
  cfg.seed = 42;
  cfg.shards = shards;

  runtime::scenario world(cfg);
  const sim::sim_time period = cfg.gossip.shuffle_period;

  workload::session_distribution sessions;
  sessions.k = workload::session_distribution::kind::pareto;
  sessions.mean = 6 * period;

  auto prog = workload::program{}
                  .then(workload::steady(4 * period))
                  .then(workload::nat_rebind(0.2))
                  .then(workload::poisson_churn(4 * period, 5.0, sessions))
                  .then(workload::steady(2 * period));

  workload::engine eng(world, std::move(prog), {});
  eng.run();
  obs::stop_trace();
  return run_result{world.state_digest(), world.events_executed()};
}

TEST(telemetry_digest, identical_with_telemetry_on_off_and_across_shards) {
  // Reference: 1 shard, no trace, counters carrying whatever earlier
  // tests left in them.
  const run_result base = run_world(1, /*traced=*/false);
  ASSERT_NE(base.digest, 0u);

  // Counter reset mid-process must be invisible.
  obs::reset_counters();
  const run_result reset_run = run_world(1, /*traced=*/false);
  EXPECT_EQ(reset_run.digest, base.digest);
  EXPECT_EQ(reset_run.events, base.events);

  // A recording trace must be invisible, serial and sharded.
  const run_result traced1 = run_world(1, /*traced=*/true);
  EXPECT_EQ(traced1.digest, base.digest);

  const run_result plain4 = run_world(4, /*traced=*/false);
  EXPECT_EQ(plain4.digest, base.digest);
  EXPECT_EQ(plain4.events, base.events);

  const run_result traced4 = run_world(4, /*traced=*/true);
  EXPECT_EQ(traced4.digest, base.digest);
  EXPECT_EQ(traced4.events, base.events);

#if NYLON_OBS
  // The telemetry actually observed something (this is the counters'
  // positive control; the digest equalities above are the negative one).
  EXPECT_GT(obs::read_counters()[obs::counter::events_executed], 0u);
  EXPECT_GT(obs::trace_statistics().recorded, 0u);
#else
  // Compiled out: same simulation, zero observation.
  EXPECT_EQ(obs::read_counters()[obs::counter::events_executed], 0u);
  EXPECT_EQ(obs::trace_statistics().recorded, 0u);
#endif
}

}  // namespace
}  // namespace nylon
