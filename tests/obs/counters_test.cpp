// Counter-registry units: per-thread blocks summed (or maxed, for peak
// counters) on read, reset scoping, JSON shape. Everything compiles and
// passes in NYLON_OBS=0 builds too — there the hooks are no-ops and
// every snapshot reads zero.
#include "obs/counters.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "util/json.h"

namespace nylon::obs {
namespace {

TEST(obs_counters, count_accumulates_and_reset_zeroes) {
  reset_counters();
  count(counter::events_executed);
  count(counter::events_executed, 4);
  count(counter::hash_probes, 7);
  const counter_snapshot snap = read_counters();
#if NYLON_OBS
  EXPECT_EQ(snap[counter::events_executed], 5u);
  EXPECT_EQ(snap[counter::hash_probes], 7u);
#else
  EXPECT_EQ(snap[counter::events_executed], 0u);
  EXPECT_EQ(snap[counter::hash_probes], 0u);
#endif
  reset_counters();
  const counter_snapshot zeroed = read_counters();
  for (std::size_t i = 0; i < counter_count; ++i) {
    EXPECT_EQ(zeroed.values[i], 0u) << to_string(static_cast<counter>(i));
  }
}

TEST(obs_counters, blocks_from_other_threads_are_summed) {
  reset_counters();
  count(counter::msg_request, 2);
  std::thread worker([] { count(counter::msg_request, 3); });
  worker.join();
  const counter_snapshot snap = read_counters();
#if NYLON_OBS
  EXPECT_EQ(snap[counter::msg_request], 5u);
  EXPECT_EQ(snap.messages_total(), 5u);
#else
  EXPECT_EQ(snap[counter::msg_request], 0u);
#endif
}

TEST(obs_counters, peak_counters_aggregate_by_max_not_sum) {
  reset_counters();
  ASSERT_TRUE(is_peak(counter::queue_peak_depth));
  count_peak(counter::queue_peak_depth, 10);
  count_peak(counter::queue_peak_depth, 4);  // lower: must not overwrite
  std::thread worker([] { count_peak(counter::queue_peak_depth, 7); });
  worker.join();
  const counter_snapshot snap = read_counters();
#if NYLON_OBS
  EXPECT_EQ(snap[counter::queue_peak_depth], 10u);
#else
  EXPECT_EQ(snap[counter::queue_peak_depth], 0u);
#endif
}

TEST(obs_counters, to_json_emits_every_counter_in_enum_order) {
  reset_counters();
  count(counter::pool_event_allocs, 3);
  const util::json doc = to_json(read_counters());
  ASSERT_TRUE(doc.is_object());
  const auto& members = doc.object_items();
  ASSERT_EQ(members.size(), counter_count);
  for (std::size_t i = 0; i < counter_count; ++i) {
    EXPECT_EQ(members[i].first, to_string(static_cast<counter>(i)));
  }
#if NYLON_OBS
  EXPECT_EQ(doc.at("pool_event_allocs").as_int(), 3);
#endif
}

TEST(obs_counters, names_are_stable_snake_case) {
  EXPECT_EQ(to_string(counter::events_executed), "events_executed");
  EXPECT_EQ(to_string(counter::msg_open_hole), "msg_open_hole");
  EXPECT_EQ(to_string(counter::hash_rehashes), "hash_rehashes");
  EXPECT_EQ(to_string(counter::sim_time_ms), "sim_time_ms");
  EXPECT_EQ(to_string(counter::nodes_added), "nodes_added");
  EXPECT_EQ(to_string(counter::nodes_removed), "nodes_removed");
}

TEST(obs_counters, sim_time_is_a_peak_population_counts_are_sums) {
  // The timeline's "obs.<counter>" columns and the heartbeat's alive
  // arithmetic both depend on these aggregation modes.
  EXPECT_TRUE(is_peak(counter::sim_time_ms));
  EXPECT_FALSE(is_peak(counter::nodes_added));
  EXPECT_FALSE(is_peak(counter::nodes_removed));
}

}  // namespace
}  // namespace nylon::obs
