// Heartbeat lifecycle: off by default (non-positive period starts no
// thread), prompt shutdown even mid-period. The emitted line itself goes
// to stderr and is format-checked by eye / in CI logs, not here.
#include "obs/heartbeat.h"

#include <gtest/gtest.h>

namespace nylon::obs {
namespace {

TEST(obs_heartbeat, zero_period_is_off) {
  const heartbeat beat(0.0);
  EXPECT_FALSE(beat.active());
}

TEST(obs_heartbeat, negative_period_is_off) {
  const heartbeat beat(-3.5);
  EXPECT_FALSE(beat.active());
}

TEST(obs_heartbeat, positive_period_starts_and_stops_promptly) {
  // A long period proves the destructor interrupts the wait instead of
  // sleeping it out (the test would time out otherwise).
  const heartbeat beat(3600.0);
  EXPECT_TRUE(beat.active());
}

}  // namespace
}  // namespace nylon::obs
