#include "metrics/reachability.h"

#include <gtest/gtest.h>

#include "core/nylon_peer.h"
#include "runtime/scenario.h"

namespace nylon::metrics {
namespace {

runtime::experiment_config tiny(core::protocol_kind kind, double natted,
                                std::uint64_t seed = 7) {
  runtime::experiment_config cfg;
  cfg.peer_count = 40;
  cfg.natted_fraction = natted;
  cfg.protocol = kind;
  cfg.gossip.view_size = 5;
  cfg.seed = seed;
  return cfg;
}

TEST(reachability, public_targets_always_reachable) {
  runtime::scenario world(tiny(core::protocol_kind::nylon, 0.5));
  world.run_periods(10);
  const auto oracle = world.oracle();
  for (const auto& p : world.peers()) {
    for (const auto& e : p->current_view().entries()) {
      if (e.peer.type == nat::nat_type::open) {
        EXPECT_TRUE(oracle.can_shuffle(p->id(), e.peer));
        EXPECT_EQ(oracle.chain_length(p->id(), e.peer), 0);
      }
    }
  }
}

TEST(reachability, dead_targets_unreachable) {
  runtime::scenario world(tiny(core::protocol_kind::nylon, 0.5));
  world.run_periods(10);
  world.remove_peer(1);
  const auto oracle = world.oracle();
  const gossip::node_descriptor dead{
      1, world.transport().advertised_endpoint(1),
      world.transport().type_of(1)};
  EXPECT_FALSE(oracle.can_shuffle(0, dead));
  EXPECT_EQ(oracle.chain_length(0, dead), -1);
}

TEST(reachability, dead_sources_cannot_shuffle) {
  runtime::scenario world(tiny(core::protocol_kind::nylon, 0.0));
  world.run_periods(5);
  world.remove_peer(0);
  const auto oracle = world.oracle();
  const gossip::node_descriptor target{
      1, world.transport().advertised_endpoint(1),
      world.transport().type_of(1)};
  EXPECT_FALSE(oracle.can_shuffle(0, target));
}

TEST(reachability, oracle_is_side_effect_free) {
  runtime::scenario world(tiny(core::protocol_kind::nylon, 0.8));
  world.run_periods(10);
  const auto oracle = world.oracle();
  // Repeating every query must give identical answers (no NAT state is
  // created by the dry-run).
  std::vector<bool> first;
  std::vector<bool> second;
  for (int round = 0; round < 2; ++round) {
    for (const auto& p : world.peers()) {
      for (const auto& e : p->current_view().entries()) {
        (round == 0 ? first : second)
            .push_back(oracle.can_shuffle(p->id(), e.peer));
      }
    }
  }
  EXPECT_EQ(first, second);
}

TEST(reachability, chain_length_bounded_in_steady_state) {
  runtime::scenario world(tiny(core::protocol_kind::nylon, 0.8, 21));
  world.run_periods(25);
  const auto oracle = world.oracle();
  for (const auto& p : world.peers()) {
    for (const auto& e : p->current_view().entries()) {
      const int chain = oracle.chain_length(p->id(), e.peer);
      if (chain >= 0) {
        EXPECT_LE(chain, 32);
      }
    }
  }
}

TEST(reachability, baseline_oracle_matches_transport_dry_run) {
  runtime::scenario world(tiny(core::protocol_kind::reference, 0.6));
  world.run_periods(15);
  const auto oracle = world.oracle();
  for (const auto& p : world.peers()) {
    for (const auto& e : p->current_view().entries()) {
      const bool deliverable =
          world.transport().would_deliver(p->id(), e.peer.addr).has_value();
      EXPECT_EQ(oracle.can_shuffle(p->id(), e.peer), deliverable);
    }
  }
}

}  // namespace
}  // namespace nylon::metrics
