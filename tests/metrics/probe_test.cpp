// The probe registry: named wrappers over the metric calls, evaluated
// against real (small) scenarios.
#include "metrics/probe.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "runtime/scenario.h"
#include "util/contracts.h"

namespace nylon::metrics {
namespace {

runtime::experiment_config small_config(core::protocol_kind kind) {
  runtime::experiment_config cfg;
  cfg.peer_count = 50;
  cfg.natted_fraction = 0.5;
  cfg.protocol = kind;
  cfg.gossip.view_size = 8;
  cfg.seed = 7;
  return cfg;
}

TEST(probe_registry, lookup_and_uniqueness) {
  EXPECT_NE(find_probe("stale_pct"), nullptr);
  EXPECT_NE(find_probe("biggest_cluster_pct"), nullptr);
  EXPECT_NE(find_probe("all_bytes_per_s"), nullptr);
  EXPECT_NE(find_probe("punch_success_pct"), nullptr);
  EXPECT_EQ(find_probe("no_such_probe"), nullptr);
  EXPECT_EQ(find_probe(""), nullptr);

  std::set<std::string_view> names;
  for (const probe& p : all_probes()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty());
    EXPECT_NE(p.run, nullptr);
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
  }
  EXPECT_GE(names.size(), 15u);
}

TEST(probe_registry, evaluates_on_a_real_scenario) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(10);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle,
                          10 * world.config().gossip.shuffle_period};

  const std::vector<std::string> names{
      "alive_count", "biggest_cluster_pct", "stale_pct",
      "all_bytes_per_s", "shuffle_success_pct", "punch_success_pct"};
  const std::vector<double> values = run_probes(names, ctx);
  ASSERT_EQ(values.size(), names.size());
  EXPECT_EQ(values[0], 50.0);                      // alive_count
  EXPECT_GT(values[1], 0.0);                       // cluster %
  EXPECT_LE(values[1], 100.0);
  EXPECT_GE(values[2], 0.0);                       // stale %
  EXPECT_LE(values[2], 100.0);
  EXPECT_GT(values[3], 0.0);                       // traffic flowed
  EXPECT_GT(values[4], 0.0);                       // shuffles answered
  EXPECT_GE(values[5], 0.0);                       // punches attempted
  EXPECT_LE(values[5], 100.0);
}

TEST(probe_registry, punch_probes_are_zero_for_nat_oblivious_protocols) {
  runtime::scenario world(small_config(core::protocol_kind::reference));
  world.run_periods(6);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle,
                          6 * world.config().gossip.shuffle_period};
  EXPECT_EQ(find_probe("punch_success_pct")->run(ctx), 0.0);
  EXPECT_EQ(find_probe("punch_expired_pct")->run(ctx), 0.0);
  EXPECT_EQ(find_probe("mean_punch_chain")->run(ctx), 0.0);
}

TEST(probe_registry, rate_probes_need_a_window) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(4);
  const reachability_oracle oracle = world.oracle();
  const probe_context no_window{world, oracle, 0};
  EXPECT_EQ(find_probe("all_bytes_per_s")->run(no_window), 0.0);
  EXPECT_EQ(find_probe("sent_bytes_per_s")->run(no_window), 0.0);
}

TEST(probe_registry, unknown_probe_name_is_a_contract_error) {
  runtime::scenario world(small_config(core::protocol_kind::reference));
  world.run_periods(1);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle, 0};
  const std::vector<std::string> names{"stale_pct", "bogus"};
  EXPECT_THROW((void)run_probes(names, ctx), contract_error);
}


TEST(probe_registry, battery_probes_share_one_stream_per_context) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(10);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle,
                          10 * world.config().gossip.shuffle_period};

  // The first battery probe builds and caches the sampled-id stream;
  // later ones must judge the same stream (sampling consumes rngs, so
  // a rebuild would see different draws).
  const double runs_p = find_probe("sample_runs_p")->run(ctx);
  ASSERT_TRUE(ctx.battery.has_value());
  const std::size_t samples = ctx.battery->samples;
  EXPECT_GT(samples, 0u);
  EXPECT_EQ(find_probe("sample_runs_p")->run(ctx), runs_p);  // cached
  const double serial = find_probe("sample_serial")->run(ctx);
  const double birthday_p = find_probe("sample_birthday_p")->run(ctx);
  const double chi2_p = find_probe("sample_chi2_p")->run(ctx);
  EXPECT_EQ(ctx.battery->samples, samples);  // no rebuild happened

  // Sanity of the shared results (no distributional pass/fail assert
  // here: the frequency test legitimately flags the public-vs-natted
  // composition bias on mixed overlays — see bench_sec5_correctness).
  EXPECT_GE(runs_p, 0.0);
  EXPECT_LE(runs_p, 1.0);
  EXPECT_GE(birthday_p, 0.0);
  EXPECT_LE(birthday_p, 1.0);
  EXPECT_GE(chi2_p, 0.0);
  EXPECT_LE(chi2_p, 1.0);
  EXPECT_GE(serial, -1.0);
  EXPECT_LE(serial, 1.0);
}

}  // namespace
}  // namespace nylon::metrics
