// The probe registry: named typed wrappers over the metric calls,
// evaluated against real (small) scenarios — scalar, per_class,
// distribution and check probes, plus the selector layer the spec
// executor narrows non-scalar probes through.
#include "metrics/probe.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "metrics/bandwidth.h"
#include "metrics/graph_analysis.h"
#include "runtime/scenario.h"
#include "util/contracts.h"

namespace nylon::metrics {
namespace {

runtime::experiment_config small_config(core::protocol_kind kind) {
  runtime::experiment_config cfg;
  cfg.peer_count = 50;
  cfg.natted_fraction = 0.5;
  cfg.protocol = kind;
  cfg.gossip.view_size = 8;
  cfg.seed = 7;
  return cfg;
}

TEST(probe_registry, lookup_and_uniqueness) {
  EXPECT_NE(find_probe("stale_pct"), nullptr);
  EXPECT_NE(find_probe("biggest_cluster_pct"), nullptr);
  EXPECT_NE(find_probe("all_bytes_per_s"), nullptr);
  EXPECT_NE(find_probe("punch_success_pct"), nullptr);
  EXPECT_EQ(find_probe("no_such_probe"), nullptr);
  EXPECT_EQ(find_probe(""), nullptr);

  std::set<std::string_view> names;
  for (const probe& p : all_probes()) {
    EXPECT_FALSE(p.name.empty());
    EXPECT_FALSE(p.description.empty());
    EXPECT_NE(p.run, nullptr);
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
    if (p.kind == probe_kind::per_class) {
      EXPECT_FALSE(p.class_keys.empty()) << p.name;
    }
  }
  EXPECT_GE(names.size(), 20u);
}

TEST(probe_registry, taxonomy_kinds_are_declared) {
  EXPECT_EQ(find_probe("stale_pct")->kind, probe_kind::scalar);
  EXPECT_EQ(find_probe("class_bytes_per_s")->kind, probe_kind::per_class);
  EXPECT_EQ(find_probe("class_in_degree")->kind, probe_kind::per_class);
  EXPECT_EQ(find_probe("rvp_chain")->kind, probe_kind::distribution);
  EXPECT_EQ(find_probe("in_degree")->kind, probe_kind::distribution);
  EXPECT_EQ(find_probe("traversal_prescribed")->kind, probe_kind::check);
  EXPECT_EQ(find_probe("check_connected")->kind, probe_kind::check);
  EXPECT_FALSE(find_probe("traversal_prescribed")->needs_world);
  EXPECT_TRUE(find_probe("check_connected")->needs_world);
  EXPECT_TRUE(find_probe("in_degree")->quantiles);
  EXPECT_FALSE(find_probe("rvp_chain")->quantiles);
  EXPECT_EQ(to_string(probe_kind::scalar), "scalar");
  EXPECT_EQ(to_string(probe_kind::per_class), "per_class");
  EXPECT_EQ(to_string(probe_kind::distribution), "distribution");
  EXPECT_EQ(to_string(probe_kind::check), "check");
}

TEST(probe_registry, evaluates_on_a_real_scenario) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(10);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle,
                          10 * world.config().gossip.shuffle_period};

  const std::vector<std::string> names{
      "alive_count", "biggest_cluster_pct", "stale_pct",
      "all_bytes_per_s", "shuffle_success_pct", "punch_success_pct"};
  const std::vector<double> values = run_probes(names, ctx);
  ASSERT_EQ(values.size(), names.size());
  EXPECT_EQ(values[0], 50.0);                      // alive_count
  EXPECT_GT(values[1], 0.0);                       // cluster %
  EXPECT_LE(values[1], 100.0);
  EXPECT_GE(values[2], 0.0);                       // stale %
  EXPECT_LE(values[2], 100.0);
  EXPECT_GT(values[3], 0.0);                       // traffic flowed
  EXPECT_GT(values[4], 0.0);                       // shuffles answered
  EXPECT_GE(values[5], 0.0);                       // punches attempted
  EXPECT_LE(values[5], 100.0);
}

TEST(probe_registry, punch_probes_are_zero_for_nat_oblivious_protocols) {
  runtime::scenario world(small_config(core::protocol_kind::reference));
  world.run_periods(6);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle,
                          6 * world.config().gossip.shuffle_period};
  EXPECT_EQ(find_probe("punch_success_pct")->run(ctx).scalar, 0.0);
  EXPECT_EQ(find_probe("punch_expired_pct")->run(ctx).scalar, 0.0);
  EXPECT_EQ(find_probe("mean_punch_chain")->run(ctx).scalar, 0.0);
}

TEST(probe_registry, rate_probes_need_a_window) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(4);
  const reachability_oracle oracle = world.oracle();
  const probe_context no_window{world, oracle, 0};
  EXPECT_EQ(find_probe("all_bytes_per_s")->run(no_window).scalar, 0.0);
  EXPECT_EQ(find_probe("sent_bytes_per_s")->run(no_window).scalar, 0.0);
}

TEST(probe_registry, unknown_probe_name_is_a_contract_error) {
  runtime::scenario world(small_config(core::protocol_kind::reference));
  world.run_periods(1);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle, 0};
  const std::vector<std::string> names{"stale_pct", "bogus"};
  EXPECT_THROW((void)run_probes(names, ctx), contract_error);
}

TEST(probe_registry, per_class_probe_matches_the_underlying_report) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(10);
  const reachability_oracle oracle = world.oracle();
  const sim::sim_time window = 10 * world.config().gossip.shuffle_period;
  const probe_context ctx{world, oracle, window};

  const probe_value v = find_probe("class_bytes_per_s")->run(ctx);
  ASSERT_EQ(v.kind, probe_kind::per_class);
  ASSERT_EQ(v.classes.size(), 3u);
  const bandwidth_report report =
      measure_bandwidth(world.transport(), world.peers(), window);
  EXPECT_EQ(v.classes[0].first, "public");
  EXPECT_EQ(v.classes[0].second, report.public_bytes_per_s);
  EXPECT_EQ(v.classes[1].first, "natted");
  EXPECT_EQ(v.classes[1].second, report.natted_bytes_per_s);
  EXPECT_EQ(v.classes[2].first, "all");
  EXPECT_EQ(v.classes[2].second, report.all_bytes_per_s);

  // Selector extraction picks the declared class.
  const probe_selector sel = resolve_selector("class_bytes_per_s",
                                              "natted", {});
  EXPECT_EQ(extract_scalar(sel, v), report.natted_bytes_per_s);

  const probe_value deg = find_probe("class_in_degree")->run(ctx);
  ASSERT_EQ(deg.kind, probe_kind::per_class);
  const class_degree_report degrees =
      in_degrees_by_class(world.transport(), world.peers());
  EXPECT_EQ(deg.classes[0].second, degrees.public_mean);
  EXPECT_EQ(deg.classes[1].second, degrees.natted_mean);
  EXPECT_GT(degrees.all_mean, 0.0);
}

TEST(probe_registry, distribution_probe_summarizes_samples) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(10);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle, 0};

  const probe_value v = find_probe("in_degree")->run(ctx);
  ASSERT_EQ(v.kind, probe_kind::distribution);
  EXPECT_EQ(v.dist.count, 50u);  // one entry per peer
  EXPECT_GT(v.dist.mean, 0.0);
  EXPECT_TRUE(v.dist.has_quantiles);
  EXPECT_LE(v.dist.min, v.dist.p50);
  EXPECT_LE(v.dist.p50, v.dist.p90);
  EXPECT_LE(v.dist.p90, v.dist.p99);
  EXPECT_LE(v.dist.p99, v.dist.max);

  // cv == stddev / mean, the legacy §5 dispersion cell.
  const probe_selector cv = resolve_selector("in_degree", {}, "cv");
  EXPECT_DOUBLE_EQ(extract_scalar(cv, v), v.dist.stddev / v.dist.mean);

  // rvp_chain merges Nylon punch + relay chains and streams (no
  // quantiles); its mean matches the scenario accessor.
  const probe_value chains = find_probe("rvp_chain")->run(ctx);
  ASSERT_EQ(chains.kind, probe_kind::distribution);
  EXPECT_FALSE(chains.dist.has_quantiles);
  const runtime::punch_stat_totals totals = world.punch_totals();
  EXPECT_EQ(chains.dist.count, totals.rvp_chains.count());
  if (totals.rvp_chains.count() > 0) {
    EXPECT_DOUBLE_EQ(chains.dist.mean, totals.rvp_chains.mean());
  }
}

TEST(probe_registry, check_probes_pass_on_a_healthy_overlay) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(10);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle, 0};

  const probe_value connected = find_probe("check_connected")->run(ctx);
  ASSERT_EQ(connected.kind, probe_kind::check);
  EXPECT_TRUE(connected.check.passed);
  EXPECT_EQ(connected.check.cell, "ok");
  EXPECT_NE(connected.check.detail.find("clusters=1"), std::string::npos);

  const probe_value fresh = find_probe("check_no_dead_refs")->run(ctx);
  EXPECT_TRUE(fresh.check.passed);  // nobody departed
}

TEST(probe_registry, traversal_check_probe_is_world_free) {
  // The §2.2 table cell: prescribed technique + packet-level verification,
  // evaluated on a world-free context via '%' params.
  probe_context ctx{std::map<std::string, std::string>{
      {"src_nat", "SYM"}, {"dst_nat", "public"}}};
  const probe_value v = find_probe("traversal_prescribed")->run(ctx);
  ASSERT_EQ(v.kind, probe_kind::check);
  EXPECT_TRUE(v.check.passed);
  EXPECT_EQ(v.check.cell, "direct");

  // Missing / malformed params carry actionable messages.
  probe_context missing{std::map<std::string, std::string>{}};
  EXPECT_THROW((void)find_probe("traversal_prescribed")->run(missing),
               contract_error);
  probe_context bogus{std::map<std::string, std::string>{
      {"src_nat", "carrier-grade"}, {"dst_nat", "public"}}};
  EXPECT_THROW((void)find_probe("traversal_prescribed")->run(bogus),
               contract_error);

  // World access on a world-free context is a contract error.
  EXPECT_FALSE(ctx.has_world());
  EXPECT_THROW((void)ctx.world(), contract_error);
  EXPECT_THROW((void)find_probe("stale_pct")->run(ctx), contract_error);
}

TEST(probe_selectors, validate_kind_and_selection_misuse) {
  // Scalars take neither class nor stat.
  EXPECT_NO_THROW((void)resolve_selector("stale_pct", {}, {}));
  EXPECT_THROW((void)resolve_selector("stale_pct", "public", {}),
               contract_error);
  EXPECT_THROW((void)resolve_selector("stale_pct", {}, "mean"),
               contract_error);
  // per_class needs a declared class.
  EXPECT_THROW((void)resolve_selector("class_bytes_per_s", {}, {}),
               contract_error);
  EXPECT_THROW((void)resolve_selector("class_bytes_per_s", "martian", {}),
               contract_error);
  EXPECT_THROW((void)resolve_selector("class_bytes_per_s", {}, "mean"),
               contract_error);
  EXPECT_NO_THROW((void)resolve_selector("class_bytes_per_s", "public", {}));
  // distribution needs a stat; quantiles only where samples are kept.
  EXPECT_THROW((void)resolve_selector("rvp_chain", {}, {}), contract_error);
  EXPECT_THROW((void)resolve_selector("rvp_chain", {}, "p90"),
               contract_error);
  EXPECT_THROW((void)resolve_selector("rvp_chain", {}, "variance"),
               contract_error);
  EXPECT_NO_THROW((void)resolve_selector("rvp_chain", {}, "mean"));
  EXPECT_NO_THROW((void)resolve_selector("in_degree", {}, "p90"));
  // check probes have no scalar view.
  EXPECT_THROW((void)resolve_selector("check_connected", {}, {}),
               contract_error);
  // The misuse messages name the fix.
  try {
    (void)resolve_selector("class_bytes_per_s", {}, {});
    FAIL() << "expected contract_error";
  } catch (const contract_error& e) {
    EXPECT_NE(std::string(e.what()).find("per_class"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("class"), std::string::npos);
  }
}

TEST(probe_registry, battery_probes_share_one_stream_per_context) {
  runtime::scenario world(small_config(core::protocol_kind::nylon));
  world.run_periods(10);
  const reachability_oracle oracle = world.oracle();
  const probe_context ctx{world, oracle,
                          10 * world.config().gossip.shuffle_period};

  // The first battery probe builds and caches the sampled-id stream;
  // later ones must judge the same stream (sampling consumes rngs, so
  // a rebuild would see different draws).
  const double runs_p = find_probe("sample_runs_p")->run(ctx).scalar;
  ASSERT_TRUE(ctx.battery.has_value());
  const std::size_t samples = ctx.battery->samples;
  EXPECT_GT(samples, 0u);
  EXPECT_EQ(find_probe("sample_runs_p")->run(ctx).scalar, runs_p);  // cached
  const double serial = find_probe("sample_serial")->run(ctx).scalar;
  const double birthday_p = find_probe("sample_birthday_p")->run(ctx).scalar;
  const double chi2_p = find_probe("sample_chi2_p")->run(ctx).scalar;
  EXPECT_EQ(ctx.battery->samples, samples);  // no rebuild happened

  // Sanity of the shared results (no distributional pass/fail assert
  // here: the frequency test legitimately flags the public-vs-natted
  // composition bias on mixed overlays — see the sec5_correctness spec).
  EXPECT_GE(runs_p, 0.0);
  EXPECT_LE(runs_p, 1.0);
  EXPECT_GE(birthday_p, 0.0);
  EXPECT_LE(birthday_p, 1.0);
  EXPECT_GE(chi2_p, 0.0);
  EXPECT_LE(chi2_p, 1.0);
  EXPECT_GE(serial, -1.0);
  EXPECT_LE(serial, 1.0);
}

}  // namespace
}  // namespace nylon::metrics
