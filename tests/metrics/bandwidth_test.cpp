#include "metrics/bandwidth.h"

#include <gtest/gtest.h>

#include "runtime/scenario.h"
#include "util/contracts.h"

namespace nylon::metrics {
namespace {

runtime::experiment_config tiny(double natted) {
  runtime::experiment_config cfg;
  cfg.peer_count = 40;
  cfg.natted_fraction = natted;
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 5;
  cfg.seed = 3;
  return cfg;
}

TEST(bandwidth, zero_window_rejected) {
  runtime::scenario world(tiny(0.0));
  EXPECT_THROW((void)measure_bandwidth(world.transport(), world.peers(), 0),
               nylon::contract_error);
}

TEST(bandwidth, counts_both_classes) {
  runtime::scenario world(tiny(0.5));
  world.transport().reset_traffic();
  world.run_periods(10);
  const auto report = measure_bandwidth(world.transport(), world.peers(),
                                        10 * sim::seconds(5));
  EXPECT_EQ(report.public_peers, 20u);
  EXPECT_EQ(report.natted_peers, 20u);
  EXPECT_GT(report.all_bytes_per_s, 0.0);
  EXPECT_GT(report.public_bytes_per_s, 0.0);
  EXPECT_GT(report.natted_bytes_per_s, 0.0);
}

TEST(bandwidth, all_is_weighted_mean_of_classes) {
  runtime::scenario world(tiny(0.5));
  world.transport().reset_traffic();
  world.run_periods(10);
  const auto report = measure_bandwidth(world.transport(), world.peers(),
                                        10 * sim::seconds(5));
  const double weighted =
      (report.public_bytes_per_s * 20 + report.natted_bytes_per_s * 20) / 40;
  EXPECT_NEAR(report.all_bytes_per_s, weighted, 1e-9);
}

TEST(bandwidth, sent_approximately_equals_received_globally) {
  runtime::scenario world(tiny(0.3));
  world.transport().reset_traffic();
  world.run_periods(10);
  const auto report = measure_bandwidth(world.transport(), world.peers(),
                                        10 * sim::seconds(5));
  // Filtered/dead drops make received <= sent; in a healthy Nylon run the
  // two are close.
  EXPECT_LE(report.received_bytes_per_s, report.sent_bytes_per_s * 1.001);
  EXPECT_GT(report.received_bytes_per_s, report.sent_bytes_per_s * 0.7);
}

TEST(bandwidth, reset_traffic_bounds_measurement_window) {
  runtime::scenario world(tiny(0.0));
  world.run_periods(50);  // warm-up traffic that must not be counted
  world.transport().reset_traffic();
  world.run_periods(5);
  const auto report = measure_bandwidth(world.transport(), world.peers(),
                                        5 * sim::seconds(5));
  // A reference-style exchange is ~2 messages of ~300 B per period per
  // peer: the mean must be in the hundreds, not thousands (which would
  // indicate the warm-up leaked in).
  EXPECT_LT(report.all_bytes_per_s, 2000.0);
  EXPECT_GT(report.all_bytes_per_s, 20.0);
}

TEST(bandwidth, dead_peers_excluded) {
  runtime::scenario world(tiny(0.5));
  world.transport().reset_traffic();
  world.run_periods(5);
  const std::size_t removed = world.remove_fraction(0.5);
  EXPECT_GT(removed, 0u);
  const auto report = measure_bandwidth(world.transport(), world.peers(),
                                        5 * sim::seconds(5));
  EXPECT_EQ(report.public_peers + report.natted_peers, 40u - removed);
}

}  // namespace
}  // namespace nylon::metrics
