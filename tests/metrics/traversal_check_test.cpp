#include "metrics/traversal_check.h"

#include <gtest/gtest.h>

#include <string>

namespace nylon::metrics {
namespace {

using nat::nat_type;
using nat::traversal_technique;

// Every cell of the §2.2 table must complete when executed with its
// prescribed technique, packet-by-packet through real NAT devices.
struct cell {
  nat_type src;
  nat_type dst;
};

class prescribed_technique_test : public ::testing::TestWithParam<cell> {};

TEST_P(prescribed_technique_test, exchange_completes) {
  const auto [src, dst] = GetParam();
  const traversal_outcome outcome = execute_prescribed(src, dst);
  EXPECT_TRUE(outcome.request_delivered)
      << to_string(src) << " -> " << to_string(dst);
  EXPECT_TRUE(outcome.response_delivered)
      << to_string(src) << " -> " << to_string(dst);
}

std::vector<cell> all_cells() {
  std::vector<cell> cells;
  for (const nat_type src :
       {nat_type::open, nat_type::full_cone, nat_type::restricted_cone,
        nat_type::port_restricted_cone, nat_type::symmetric}) {
    for (const nat_type dst :
         {nat_type::open, nat_type::full_cone, nat_type::restricted_cone,
          nat_type::port_restricted_cone, nat_type::symmetric}) {
      cells.push_back(cell{src, dst});
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(
    all_pairs, prescribed_technique_test, ::testing::ValuesIn(all_cells()),
    [](const ::testing::TestParamInfo<cell>& info) {
      return std::string(to_string(info.param.src)) + "_to_" +
             std::string(to_string(info.param.dst));
    });

// Negative controls: the *wrong* (cheaper) technique must fail exactly
// where the table says it is insufficient — this validates that the NAT
// models are restrictive enough, not just permissive enough.

TEST(traversal_check, direct_fails_against_restricted_cone) {
  const auto outcome = execute_technique(nat_type::open,
                                         nat_type::restricted_cone,
                                         traversal_technique::direct);
  EXPECT_FALSE(outcome.request_delivered);
}

TEST(traversal_check, direct_fails_against_port_restricted_cone) {
  const auto outcome =
      execute_technique(nat_type::open, nat_type::port_restricted_cone,
                        traversal_technique::direct);
  EXPECT_FALSE(outcome.request_delivered);
}

TEST(traversal_check, direct_fails_against_symmetric) {
  const auto outcome = execute_technique(
      nat_type::open, nat_type::symmetric, traversal_technique::direct);
  EXPECT_FALSE(outcome.request_delivered);
}

TEST(traversal_check, hole_punching_fails_prc_to_symmetric) {
  // The PONG from the SYM target's fresh port cannot match the PRC
  // source's port-specific rule: this is why the table says "relaying".
  const auto outcome =
      execute_technique(nat_type::port_restricted_cone, nat_type::symmetric,
                        traversal_technique::hole_punching);
  EXPECT_FALSE(outcome.exchange_completed());
}

TEST(traversal_check, hole_punching_fails_sym_to_prc) {
  const auto outcome =
      execute_technique(nat_type::symmetric, nat_type::port_restricted_cone,
                        traversal_technique::hole_punching);
  EXPECT_FALSE(outcome.exchange_completed());
}

TEST(traversal_check, hole_punching_succeeds_rc_to_symmetric) {
  // The table's interesting cell: an RC source CAN hole-punch a SYM
  // target because its filter is IP-based.
  const auto outcome = execute_technique(nat_type::restricted_cone,
                                         nat_type::symmetric,
                                         traversal_technique::hole_punching);
  EXPECT_TRUE(outcome.exchange_completed());
}

TEST(traversal_check, relaying_always_works) {
  for (const nat_type src :
       {nat_type::open, nat_type::restricted_cone,
        nat_type::port_restricted_cone, nat_type::symmetric}) {
    for (const nat_type dst :
         {nat_type::open, nat_type::restricted_cone,
          nat_type::port_restricted_cone, nat_type::symmetric}) {
      const auto outcome =
          execute_technique(src, dst, traversal_technique::relaying);
      EXPECT_TRUE(outcome.exchange_completed())
          << to_string(src) << " -> " << to_string(dst);
    }
  }
}

}  // namespace
}  // namespace nylon::metrics
