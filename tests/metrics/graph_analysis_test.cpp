#include "metrics/graph_analysis.h"

#include <gtest/gtest.h>

#include "runtime/scenario.h"

namespace nylon::metrics {
namespace {

runtime::experiment_config tiny(core::protocol_kind kind, double natted) {
  runtime::experiment_config cfg;
  cfg.peer_count = 60;
  cfg.natted_fraction = natted;
  cfg.protocol = kind;
  cfg.gossip.view_size = 6;
  cfg.seed = 5;
  return cfg;
}

TEST(graph_analysis, fully_public_world_is_one_cluster) {
  runtime::scenario world(tiny(core::protocol_kind::reference, 0.0));
  world.run_periods(20);
  const auto oracle = world.oracle();
  const auto clusters =
      measure_clusters(world.transport(), world.peers(), oracle);
  EXPECT_EQ(clusters.alive_peers, 60u);
  EXPECT_EQ(clusters.biggest_cluster, 60u);
  EXPECT_DOUBLE_EQ(clusters.biggest_cluster_pct, 100.0);
  EXPECT_EQ(clusters.cluster_count, 1u);
  EXPECT_GT(clusters.mean_usable_out_degree, 3.0);
}

TEST(graph_analysis, fully_public_world_has_no_stale_entries) {
  runtime::scenario world(tiny(core::protocol_kind::reference, 0.0));
  world.run_periods(20);
  const auto oracle = world.oracle();
  const auto views = measure_views(world.transport(), world.peers(), oracle);
  EXPECT_GT(views.total_entries, 0u);
  EXPECT_EQ(views.stale_entries, 0u);
  EXPECT_EQ(views.fresh_natted_pct, 0.0);
}

TEST(graph_analysis, baseline_behind_nats_accumulates_stale_entries) {
  runtime::scenario world(tiny(core::protocol_kind::reference, 0.7));
  world.run_periods(30);
  const auto oracle = world.oracle();
  const auto views = measure_views(world.transport(), world.peers(), oracle);
  EXPECT_GT(views.stale_pct, 10.0);
}

TEST(graph_analysis, nylon_behind_nats_stays_clean) {
  runtime::scenario world(tiny(core::protocol_kind::nylon, 0.7));
  world.run_periods(30);
  const auto oracle = world.oracle();
  const auto views = measure_views(world.transport(), world.peers(), oracle);
  EXPECT_LT(views.stale_pct, 8.0);
  const auto clusters =
      measure_clusters(world.transport(), world.peers(), oracle);
  EXPECT_GT(clusters.biggest_cluster_pct, 95.0);
}

TEST(graph_analysis, dead_peers_counted_as_stale_and_excluded) {
  runtime::scenario world(tiny(core::protocol_kind::nylon, 0.5));
  world.run_periods(10);
  world.remove_peer(3);
  world.remove_peer(4);
  const auto oracle = world.oracle();
  const auto clusters =
      measure_clusters(world.transport(), world.peers(), oracle);
  EXPECT_EQ(clusters.alive_peers, 58u);
  const auto views = measure_views(world.transport(), world.peers(), oracle);
  EXPECT_EQ(views.stale_entries >= views.dead_entries, true);
}

TEST(graph_analysis, in_degrees_cover_population) {
  runtime::scenario world(tiny(core::protocol_kind::reference, 0.0));
  world.run_periods(20);
  const auto degrees = in_degrees(world.transport(), world.peers());
  ASSERT_EQ(degrees.size(), 60u);
  std::size_t total = 0;
  for (const std::size_t d : degrees) total += d;
  // Total in-degree equals total view entries.
  const auto oracle = world.oracle();
  const auto views = measure_views(world.transport(), world.peers(), oracle);
  EXPECT_EQ(total, views.total_entries);
}

}  // namespace
}  // namespace nylon::metrics
