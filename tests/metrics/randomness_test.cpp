#include "metrics/randomness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/contracts.h"
#include "util/rng.h"

namespace nylon::metrics {
namespace {

TEST(gamma_q, known_values) {
  // Q(1, x) = exp(-x).
  EXPECT_NEAR(gamma_q(1.0, 0.5), std::exp(-0.5), 1e-10);
  EXPECT_NEAR(gamma_q(1.0, 3.0), std::exp(-3.0), 1e-10);
  // Q(0.5, x) = erfc(sqrt(x)).
  EXPECT_NEAR(gamma_q(0.5, 1.0), std::erfc(1.0), 1e-10);
  // Chi-square with 2 dof: survival at its mean ~ 0.3679.
  EXPECT_NEAR(gamma_q(1.0, 1.0), 0.36787944117, 1e-8);
}

TEST(gamma_q, boundaries) {
  EXPECT_DOUBLE_EQ(gamma_q(2.0, 0.0), 1.0);
  EXPECT_LT(gamma_q(2.0, 100.0), 1e-30);
  EXPECT_THROW((void)gamma_q(0.0, 1.0), nylon::contract_error);
  EXPECT_THROW((void)gamma_q(1.0, -1.0), nylon::contract_error);
}

TEST(normal_sf, known_values) {
  EXPECT_NEAR(normal_sf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_sf(1.96), 0.0249979, 1e-5);
  EXPECT_NEAR(normal_sf(-1.96), 0.9750021, 1e-5);
}

TEST(chi_square, uniform_counts_pass) {
  const std::vector<std::uint64_t> counts(20, 100);
  const auto result = chi_square_uniform(counts);
  EXPECT_DOUBLE_EQ(result.statistic, 0.0);
  EXPECT_EQ(result.dof, 19u);
  EXPECT_NEAR(result.p_value, 1.0, 1e-12);
}

TEST(chi_square, skewed_counts_fail) {
  std::vector<std::uint64_t> counts(20, 100);
  counts[0] = 1000;
  const auto result = chi_square_uniform(counts);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(chi_square, mild_noise_passes) {
  util::rng rng(3);
  std::vector<std::uint64_t> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.index(50)];
  const auto result = chi_square_uniform(counts);
  EXPECT_GT(result.p_value, 0.001);
}

TEST(chi_square, requires_two_categories_and_data) {
  EXPECT_THROW((void)chi_square_uniform(std::vector<std::uint64_t>{5}),
               nylon::contract_error);
  EXPECT_THROW((void)chi_square_uniform(std::vector<std::uint64_t>{0, 0}),
               nylon::contract_error);
}

TEST(runs_test, alternating_sequence_has_too_many_runs) {
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(i % 2 == 0 ? 1.0 : 0.0);
  const auto result = runs_test(values);
  EXPECT_GT(result.z, 5.0);  // far more runs than expected
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(runs_test, sorted_sequence_has_too_few_runs) {
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) values.push_back(i);
  const auto result = runs_test(values);
  EXPECT_LT(result.z, -5.0);
  EXPECT_LT(result.p_value, 1e-6);
}

TEST(runs_test, random_sequence_passes) {
  util::rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 5000; ++i) values.push_back(rng.uniform01());
  const auto result = runs_test(values);
  EXPECT_GT(result.p_value, 0.001);
}

TEST(runs_test, degenerate_inputs) {
  EXPECT_EQ(runs_test({}).runs, 0u);
  const std::vector<double> constant(10, 3.0);
  const auto result = runs_test(constant);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);  // all on one side: inconclusive
}

TEST(serial_correlation, iid_is_near_zero) {
  util::rng rng(9);
  std::vector<double> values;
  for (int i = 0; i < 20000; ++i) values.push_back(rng.uniform01());
  EXPECT_LT(std::abs(serial_correlation(values)), 0.03);
}

TEST(serial_correlation, trend_is_near_one) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i);
  EXPECT_GT(serial_correlation(values), 0.99);
}

TEST(serial_correlation, alternation_is_negative) {
  std::vector<double> values;
  for (int i = 0; i < 1000; ++i) values.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(serial_correlation(values), -0.99);
}

TEST(serial_correlation, degenerate_inputs) {
  EXPECT_DOUBLE_EQ(serial_correlation({}), 0.0);
  EXPECT_DOUBLE_EQ(serial_correlation(std::vector<double>{1.0, 2.0}), 0.0);
  EXPECT_DOUBLE_EQ(serial_correlation(std::vector<double>(10, 5.0)), 0.0);
}

TEST(birthday_spacings, uniform_samples_pass) {
  // m sized so lambda = m^3 / 4n is moderate; a uniform stream should
  // produce an unsurprising repeat count.
  util::rng rng(29);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 64; ++i) {
    ids.push_back(static_cast<std::uint32_t>(rng.index(1u << 20)));
  }
  const birthday_spacings_result r = birthday_spacings(ids, 1u << 20);
  EXPECT_NEAR(r.lambda, 64.0 * 64.0 * 64.0 / (4.0 * (1u << 20)), 1e-9);
  EXPECT_GE(r.p_value, 0.01);
}

TEST(birthday_spacings, clustered_samples_fail) {
  // An arithmetic lattice: every spacing is identical, the worst
  // possible clustering signature.
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < 64; ++i) ids.push_back(i * 1000);
  const birthday_spacings_result r = birthday_spacings(ids, 1u << 20);
  EXPECT_EQ(r.repeats, 62u);  // all 63 spacings equal -> 62 duplicates
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(birthday_spacings, degenerate_inputs) {
  EXPECT_EQ(birthday_spacings({}, 100).p_value, 1.0);
  const std::vector<std::uint32_t> two{1, 2};
  EXPECT_EQ(birthday_spacings(two, 100).repeats, 0u);
}

TEST(battery, uniform_rng_stream_passes) {
  util::rng rng(11);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 30000; ++i) {
    ids.push_back(static_cast<std::uint32_t>(rng.index(1000)));
  }
  const auto result = run_battery(ids, 1000);
  EXPECT_TRUE(result.passed()) << "chi2 p=" << result.frequency.p_value
                               << " runs p=" << result.runs.p_value
                               << " serial=" << result.serial;
}

TEST(battery, biased_stream_fails) {
  util::rng rng(11);
  std::vector<std::uint32_t> ids;
  for (int i = 0; i < 30000; ++i) {
    // Heavy bias towards low ids.
    ids.push_back(static_cast<std::uint32_t>(rng.index(i % 4 == 0 ? 1000 : 100)));
  }
  EXPECT_FALSE(run_battery(ids, 1000).passed());
}

TEST(battery, correlated_stream_fails) {
  std::vector<std::uint32_t> ids;
  util::rng rng(13);
  std::uint32_t current = 0;
  for (int i = 0; i < 30000; ++i) {
    current = (current + static_cast<std::uint32_t>(rng.index(3))) % 1000;
    ids.push_back(current);  // strong lag-1 correlation
  }
  EXPECT_FALSE(run_battery(ids, 1000).passed());
}

TEST(battery, empty_stream_fails_closed) {
  EXPECT_FALSE(run_battery({}, 10).passed());
}

TEST(battery, rejects_out_of_range_ids) {
  const std::vector<std::uint32_t> ids{5};
  EXPECT_THROW((void)run_battery(ids, 5), nylon::contract_error);
}

}  // namespace
}  // namespace nylon::metrics
