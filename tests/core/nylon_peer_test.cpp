#include "core/nylon_peer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gossip/bootstrap.h"
#include "net/latency.h"
#include "net/transport.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace nylon::core {
namespace {

using gossip::gossip_message;
using gossip::message_kind;
using gossip::protocol_config;
using gossip::view_entry;

protocol_config small_config() {
  protocol_config cfg;
  cfg.view_size = 8;
  return cfg;
}

/// Hand-wired world of Nylon peers with helpers to script exact message
/// sequences (used to re-enact Fig. 5).
class nylon_world {
 public:
  nylon_world() : rng_(1), transport_(sched_, rng_, net::paper_latency()) {}

  nylon_peer& add(nat::nat_type type) {
    auto p = std::make_unique<nylon_peer>(transport_, rng_, small_config());
    p->attach(transport_.add_node(type, *p));
    peers_.push_back(std::move(p));
    return *peers_.back();
  }

  void settle() { sched_.run_for(sim::millis(300)); }

  void run_periods(int n) {
    sched_.run_for(n * small_config().shuffle_period);
  }

  /// Opens mutual NAT holes between two natted peers using the
  /// protocol's own PING/PONG: a's PING dies at b's NAT but opens a's
  /// hole; b's PING then traverses it; the handlers' PONGs finish the
  /// job.
  void cross_open(nylon_peer& a, nylon_peer& b) {
    send_ping(a, b);
    settle();
    send_ping(b, a);
    settle();
  }

  /// Injects a REQUEST on behalf of `from` targeting `to` directly
  /// (assumes holes are open), carrying `from`'s real buffer-like self
  /// entry. The responding side runs the real protocol.
  void inject_shuffle(nylon_peer& from, nylon_peer& to) {
    gossip_message msg;
    msg.kind = message_kind::request;
    msg.sender = from.self();
    msg.src = from.self();
    msg.dest = to.self();
    const view_entry buffer[] = {view_entry{from.self(), 0, sim::seconds(90)}};
    msg.entries = buffer;
    transport_.send(from.id(), transport_.advertised_endpoint(to.id()),
                    make_message(msg));
    settle();
  }

  void send_ping(nylon_peer& from, nylon_peer& to) {
    gossip_message ping;
    ping.kind = message_kind::ping;
    ping.sender = from.self();
    ping.src = from.self();
    ping.dest = to.self();
    transport_.send(from.id(), transport_.advertised_endpoint(to.id()),
                    make_message(ping));
  }

  void bootstrap_and_start() {
    std::vector<gossip::peer*> raw;
    for (const auto& p : peers_) raw.push_back(p.get());
    gossip::bootstrap_with_public_peers(raw, rng_);
    for (const auto& p : peers_) p->start(0);
  }

  sim::scheduler sched_;
  util::rng rng_;
  net::transport transport_;
  std::vector<std::unique_ptr<nylon_peer>> peers_;
};

TEST(nylon_peer, forces_pushpull) {
  nylon_world w;
  protocol_config cfg = small_config();
  cfg.propagation = gossip::propagation_policy::push;
  nylon_peer p(w.transport_, w.rng_, cfg);
  EXPECT_EQ(p.config().propagation, gossip::propagation_policy::pushpull);
}

TEST(nylon_peer, ping_pong_establishes_mutual_direct_contacts) {
  nylon_world w;
  nylon_peer& a = w.add(nat::nat_type::restricted_cone);
  nylon_peer& b = w.add(nat::nat_type::restricted_cone);
  w.cross_open(a, b);
  const auto now = w.sched_.now();
  EXPECT_TRUE(a.routes().is_direct(b.id(), now));
  EXPECT_TRUE(b.routes().is_direct(a.id(), now));
}

TEST(nylon_peer, shuffle_with_public_peer_works_end_to_end) {
  nylon_world w;
  nylon_peer& pub = w.add(nat::nat_type::open);
  nylon_peer& natted = w.add(nat::nat_type::port_restricted_cone);
  w.bootstrap_and_start();
  w.run_periods(3);
  EXPECT_GT(natted.stats().initiated, 0u);
  EXPECT_GT(natted.stats().responses_received, 0u);
  EXPECT_GT(pub.stats().requests_received, 0u);
  // The shuffle partners became mutual direct contacts.
  EXPECT_TRUE(pub.routes().is_direct(natted.id(), w.sched_.now()));
}

TEST(nylon_peer, figure5_chain_reenactment) {
  // Re-creates the exact scenario of Fig. 5: n1-n2 shuffle, then n2 hands
  // n1's reference to n3, then n3 hands it to n4. n4 must then be able to
  // hole-punch n1 through the RVP chain n3 -> n2 -> n1.
  nylon_world w;
  nylon_peer& n1 = w.add(nat::nat_type::restricted_cone);
  nylon_peer& n2 = w.add(nat::nat_type::restricted_cone);
  nylon_peer& n3 = w.add(nat::nat_type::restricted_cone);
  nylon_peer& n4 = w.add(nat::nat_type::restricted_cone);

  // n1 <-> n2 shuffle (after hole punching, §4: "they both become RVP for
  // each other").
  w.cross_open(n1, n2);
  w.inject_shuffle(n1, n2);

  // n2 <-> n3 shuffle: n2's response hands n3 the reference to n1, so
  // n3's routing table must map n1 -> RVP n2 (Fig. 5, middle).
  w.cross_open(n2, n3);
  w.inject_shuffle(n3, n2);
  {
    const auto hop = n3.routes().next_rvp(n1.id(), w.sched_.now());
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(hop->rvp, n2.id());
  }

  // n3 <-> n4 shuffle: n4 learns n1 via n3 (Fig. 5, left).
  w.cross_open(n3, n4);
  w.inject_shuffle(n4, n3);
  {
    const auto hop = n4.routes().next_rvp(n1.id(), w.sched_.now());
    ASSERT_TRUE(hop.has_value());
    EXPECT_EQ(hop->rvp, n3.id());
  }

  // The advertised TTL propagates the chain minimum: n4's route to n1
  // cannot outlive n3's by more than the in-flight latency slack (the
  // advertised remaining is computed at send time; §4 footnote 3).
  EXPECT_LE(n4.routes().remaining_ttl(n1.id(), w.sched_.now()),
            n3.routes().remaining_ttl(n1.id(), w.sched_.now()) +
                sim::millis(100));

  // n4 hole-punches n1: OPEN_HOLE travels n4 -> n3 -> n2 -> n1, then n1
  // PONGs n4 directly.
  gossip_message open;
  open.kind = message_kind::open_hole;
  open.sender = n4.self();
  open.src = n4.self();
  open.dest = n1.self();
  const auto hop = n4.routes().next_rvp(n1.id(), w.sched_.now());
  ASSERT_TRUE(hop.has_value());
  w.send_ping(n4, n1);  // line 11-12: open n4's own hole first
  w.transport_.send(n4.id(), hop->address, make_message(open));
  w.settle();

  // The OPEN_HOLE arrived at n1 after exactly two forwarders (n3, n2).
  EXPECT_EQ(n1.nat_stats().punch_chain_hops.count(), 1u);
  EXPECT_DOUBLE_EQ(n1.nat_stats().punch_chain_hops.mean(), 2.0);
  EXPECT_EQ(n3.stats().messages_forwarded, 1u);
  EXPECT_EQ(n2.stats().messages_forwarded, 1u);
  // And the PONG made n1 a direct contact of n4.
  EXPECT_TRUE(n4.routes().is_direct(n1.id(), w.sched_.now()));
}

TEST(nylon_peer, open_hole_without_route_is_dropped) {
  nylon_world w;
  nylon_peer& a = w.add(nat::nat_type::restricted_cone);
  nylon_peer& b = w.add(nat::nat_type::restricted_cone);
  nylon_peer& c = w.add(nat::nat_type::restricted_cone);
  w.cross_open(a, b);
  // b has no route to c: a forwarded OPEN_HOLE towards c must die at b.
  gossip_message open;
  open.kind = message_kind::open_hole;
  open.sender = a.self();
  open.src = a.self();
  open.dest = c.self();
  w.transport_.send(a.id(), w.transport_.advertised_endpoint(b.id()),
                    make_message(open));
  w.settle();
  EXPECT_EQ(b.stats().forward_drops, 1u);
  EXPECT_EQ(c.nat_stats().punch_chain_hops.count(), 0u);
}

TEST(nylon_peer, pong_without_pending_punch_sends_no_request) {
  nylon_world w;
  nylon_peer& a = w.add(nat::nat_type::restricted_cone);
  nylon_peer& b = w.add(nat::nat_type::restricted_cone);
  w.cross_open(a, b);  // the PONGs here had no pending punches
  EXPECT_EQ(a.stats().requests_received, 0u);
  EXPECT_EQ(b.stats().requests_received, 0u);
  EXPECT_EQ(a.nat_stats().punches_completed, 0u);
}

TEST(nylon_peer, reactive_punching_happens_in_real_runs) {
  // One public seed plus RC peers: punches towards natted targets must
  // occur and overwhelmingly succeed.
  nylon_world w;
  w.add(nat::nat_type::open);
  for (int i = 0; i < 7; ++i) w.add(nat::nat_type::restricted_cone);
  w.bootstrap_and_start();
  w.run_periods(30);
  std::uint64_t started = 0;
  std::uint64_t completed = 0;
  for (const auto& p : w.peers_) {
    started += p->nat_stats().punches_started;
    completed += p->nat_stats().punches_completed;
  }
  EXPECT_GT(started, 0u);
  EXPECT_GT(completed, started * 8 / 10);
}

TEST(nylon_peer, symmetric_initiator_relays_requests) {
  nylon_world w;
  w.add(nat::nat_type::open);
  w.add(nat::nat_type::symmetric);
  for (int i = 0; i < 4; ++i) w.add(nat::nat_type::restricted_cone);
  w.bootstrap_and_start();
  w.run_periods(30);
  const nylon_peer& sym = *w.peers_[1];
  // A symmetric peer never hole-punches as initiator (Fig. 6 line 5).
  EXPECT_EQ(sym.nat_stats().punches_started, 0u);
  EXPECT_GT(sym.nat_stats().relayed_shuffles +
                sym.nat_stats().direct_shuffles,
            0u);
  // And it completes shuffles despite the NAT.
  EXPECT_GT(sym.stats().responses_received, 0u);
}

TEST(nylon_peer, symmetric_responder_relays_responses) {
  nylon_world w;
  w.add(nat::nat_type::open);
  w.add(nat::nat_type::symmetric);
  for (int i = 0; i < 4; ++i) w.add(nat::nat_type::port_restricted_cone);
  w.bootstrap_and_start();
  w.run_periods(40);
  const nylon_peer& sym = *w.peers_[1];
  // Someone gossiped with the symmetric peer...
  EXPECT_GT(sym.stats().requests_received, 0u);
  // ...and relayed REQUESTs to a SYM target arrive through the chain
  // (hop count > 0 recorded at the target).
  EXPECT_GT(sym.nat_stats().relay_chain_hops.count() +
                sym.nat_stats().punch_chain_hops.count(),
            0u);
}

TEST(nylon_peer, views_stay_clean_in_steady_state) {
  nylon_world w;
  for (int i = 0; i < 2; ++i) w.add(nat::nat_type::open);
  for (int i = 0; i < 8; ++i) w.add(nat::nat_type::restricted_cone);
  w.bootstrap_and_start();
  w.run_periods(40);
  for (const auto& p : w.peers_) {
    EXPECT_GT(p->current_view().size(), 0u);
    EXPECT_LE(p->current_view().size(), p->config().view_size);
    for (const view_entry& e : p->current_view().entries()) {
      EXPECT_NE(e.peer.id, p->id());
    }
  }
}

TEST(nylon_peer, no_route_skips_are_rare_in_steady_state) {
  nylon_world w;
  w.add(nat::nat_type::open);
  for (int i = 0; i < 9; ++i) w.add(nat::nat_type::restricted_cone);
  w.bootstrap_and_start();
  w.run_periods(40);
  std::uint64_t initiated = 0;
  std::uint64_t skips = 0;
  for (const auto& p : w.peers_) {
    initiated += p->stats().initiated;
    skips += p->stats().no_route_skips;
  }
  EXPECT_GT(initiated, 0u);
  EXPECT_LT(skips, initiated / 20);
}

TEST(nylon_peer, buffers_advertise_route_ttls) {
  nylon_world w;
  nylon_peer& pub = w.add(nat::nat_type::open);
  nylon_peer& a = w.add(nat::nat_type::restricted_cone);
  nylon_peer& b = w.add(nat::nat_type::restricted_cone);
  (void)pub;
  w.cross_open(a, b);
  w.inject_shuffle(a, b);
  // After the shuffle, b's view contains a as a direct contact, so a
  // future buffer would advertise a positive TTL; we check the routing
  // view directly.
  EXPECT_GT(b.routes().remaining_ttl(a.id(), w.sched_.now()), 0);
  EXPECT_LE(b.routes().remaining_ttl(a.id(), w.sched_.now()),
            sim::seconds(90));
}

}  // namespace
}  // namespace nylon::core
