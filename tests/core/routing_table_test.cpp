#include "core/routing_table.h"

#include <gtest/gtest.h>

#include "util/contracts.h"

namespace nylon::core {
namespace {

constexpr sim::sim_time timeout = sim::seconds(90);
const net::endpoint ep1{net::ip_address{1}, 1000};
const net::endpoint ep2{net::ip_address{2}, 2000};

TEST(routing_table, empty_has_no_routes) {
  routing_table rt(timeout);
  EXPECT_FALSE(rt.next_rvp(1, 0).has_value());
  EXPECT_EQ(rt.remaining_ttl(1, 0), 0);
  EXPECT_FALSE(rt.is_direct(1, 0));
}

TEST(routing_table, rejects_nonpositive_timeout) {
  EXPECT_THROW(routing_table(0), nylon::contract_error);
}

TEST(routing_table, direct_contact_resolves_to_itself) {
  routing_table rt(timeout);
  rt.touch_direct(7, ep1, 0);
  const auto hop = rt.next_rvp(7, 10);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->rvp, 7u);
  EXPECT_EQ(hop->address, ep1);
  EXPECT_TRUE(rt.is_direct(7, 10));
}

TEST(routing_table, direct_contact_expires) {
  routing_table rt(timeout);
  rt.touch_direct(7, ep1, 0);
  EXPECT_TRUE(rt.next_rvp(7, timeout).has_value());
  EXPECT_FALSE(rt.next_rvp(7, timeout + 1).has_value());
}

TEST(routing_table, touch_refreshes_and_updates_address) {
  routing_table rt(timeout);
  rt.touch_direct(7, ep1, 0);
  rt.touch_direct(7, ep2, 50);
  const auto hop = rt.next_rvp(7, timeout + 40);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->address, ep2);
}

TEST(routing_table, chained_route_resolves_through_direct_rvp) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);
  rt.learn_route(9, 3, 60'000, 0);
  const auto hop = rt.next_rvp(9, 10);
  ASSERT_TRUE(hop.has_value());
  EXPECT_EQ(hop->rvp, 3u);
  EXPECT_EQ(hop->address, ep1);
}

TEST(routing_table, chained_route_unusable_without_direct_rvp) {
  routing_table rt(timeout);
  rt.learn_route(9, 3, 60'000, 0);
  EXPECT_FALSE(rt.next_rvp(9, 10).has_value());
}

TEST(routing_table, chained_route_expires_at_learnt_ttl) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);
  rt.learn_route(9, 3, 40'000, 0);
  rt.touch_direct(3, ep1, 40'000);  // keep the RVP alive
  EXPECT_TRUE(rt.next_rvp(9, 40'000).has_value());
  EXPECT_FALSE(rt.next_rvp(9, 40'001).has_value());
}

TEST(routing_table, first_giver_wins_while_valid) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);
  rt.touch_direct(4, ep2, 0);
  rt.learn_route(9, 3, 50'000, 0);
  // A second, even longer-lived offer must NOT replace the live route
  // (acyclic-chain discipline; see routing_table.h).
  rt.learn_route(9, 4, 80'000, 10);
  EXPECT_EQ(rt.next_rvp(9, 10)->rvp, 3u);
}

TEST(routing_table, expired_route_is_replaced) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);
  rt.touch_direct(4, ep2, 51'000);
  rt.learn_route(9, 3, 50'000, 0);
  rt.learn_route(9, 4, 95'000, 51'000);  // old one lapsed at 50s
  EXPECT_EQ(rt.next_rvp(9, 52'000)->rvp, 4u);
}

TEST(routing_table, learn_route_rejects_self_pointing) {
  routing_table rt(timeout);
  EXPECT_THROW(rt.learn_route(5, 5, 1'000, 0), nylon::contract_error);
}

TEST(routing_table, direct_preferred_over_chain) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);
  rt.learn_route(9, 3, 80'000, 0);
  rt.touch_direct(9, ep2, 10);
  EXPECT_EQ(rt.next_rvp(9, 20)->rvp, 9u);
  // When the direct hole lapses, the chain takes over again.
  EXPECT_EQ(rt.next_rvp(9, 10 + timeout + 1), std::nullopt);  // rvp 3 also gone
}

TEST(routing_table, remaining_ttl_direct) {
  routing_table rt(timeout);
  rt.touch_direct(7, ep1, 1'000);
  EXPECT_EQ(rt.remaining_ttl(7, 31'000), timeout - 30'000);
}

TEST(routing_table, remaining_ttl_chain_is_min_of_links) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);       // direct link expires at 90s
  rt.learn_route(9, 3, 40'000, 0);  // chain expires at 40s
  EXPECT_EQ(rt.remaining_ttl(9, 10'000), 30'000);
  // Fig. 5 sanity: the advertised TTL is the chain minimum, so a fresher
  // local link must not inflate it.
  rt.touch_direct(3, ep1, 10'000);
  EXPECT_EQ(rt.remaining_ttl(9, 10'000), 30'000);
}

TEST(routing_table, purge_drops_expired_entries) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);
  rt.learn_route(9, 3, 10'000, 0);
  rt.learn_route(8, 3, 200'000, 0);
  rt.purge_expired(100'000);
  EXPECT_EQ(rt.direct_count(100'000), 0u);
  EXPECT_EQ(rt.route_count(100'000), 1u);
}

TEST(routing_table, forget_removes_both_layers) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);
  rt.touch_direct(9, ep2, 0);
  rt.learn_route(9, 3, 50'000, 0);
  rt.forget(9);
  EXPECT_FALSE(rt.next_rvp(9, 0).has_value());
  EXPECT_TRUE(rt.next_rvp(3, 0).has_value());
}

TEST(routing_table, refresh_routes_via_extends_chains) {
  routing_table rt(timeout);
  rt.touch_direct(3, ep1, 0);
  rt.learn_route(9, 3, 10'000, 0);
  rt.refresh_routes_via(3, 5'000);
  rt.touch_direct(3, ep1, 60'000);
  EXPECT_TRUE(rt.next_rvp(9, 60'000).has_value());
  // But an already-expired route is not resurrected.
  rt.learn_route(8, 3, 1'000, 0);
  rt.refresh_routes_via(3, 70'000);
  EXPECT_FALSE(rt.next_rvp(8, 70'000).has_value());
}

TEST(routing_table, counts_only_live_entries) {
  routing_table rt(timeout);
  rt.touch_direct(1, ep1, 0);
  rt.touch_direct(2, ep2, 50'000);
  rt.learn_route(9, 1, 30'000, 0);
  EXPECT_EQ(rt.direct_count(100'000), 1u);
  EXPECT_EQ(rt.route_count(100'000), 0u);
}

}  // namespace
}  // namespace nylon::core
