#include "core/arrg_peer.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/peer_factory.h"
#include "gossip/bootstrap.h"
#include "net/latency.h"
#include "net/transport.h"
#include "sim/scheduler.h"
#include "util/rng.h"

namespace nylon::core {
namespace {

using gossip::protocol_config;

struct arrg_world {
  arrg_world() : rng(1), transport(sched, rng, net::paper_latency()) {}

  arrg_peer& add(nat::nat_type type) {
    protocol_config cfg;
    cfg.view_size = 4;
    auto p = std::make_unique<arrg_peer>(transport, rng, cfg);
    p->attach(transport.add_node(type, *p));
    peers.push_back(std::move(p));
    return *peers.back();
  }

  void bootstrap_and_start() {
    std::vector<gossip::peer*> raw;
    for (const auto& p : peers) raw.push_back(p.get());
    gossip::bootstrap_with_public_peers(raw, rng);
    for (const auto& p : peers) p->start(0);
  }

  void run_periods(int n) { sched.run_for(n * sim::seconds(5)); }

  sim::scheduler sched;
  util::rng rng;
  net::transport transport;
  std::vector<std::unique_ptr<arrg_peer>> peers;
};

TEST(arrg_peer, rejects_zero_cache) {
  arrg_world w;
  protocol_config cfg;
  EXPECT_THROW(arrg_peer(w.transport, w.rng, cfg, 0), nylon::contract_error);
}

TEST(arrg_peer, caches_successful_partners) {
  arrg_world w;
  arrg_peer& a = w.add(nat::nat_type::open);
  arrg_peer& b = w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(2);
  const auto cache_a = a.cache_snapshot();
  ASSERT_FALSE(cache_a.empty());
  EXPECT_EQ(cache_a.front().id, b.id());
}

TEST(arrg_peer, cache_is_bounded_and_lru) {
  arrg_world w;
  arrg_peer& hub = w.add(nat::nat_type::open);
  for (int i = 0; i < 14; ++i) w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(20);
  EXPECT_LE(hub.cache_snapshot().size(), 10u);
}

TEST(arrg_peer, falls_back_to_cache_after_silent_failure) {
  arrg_world w;
  arrg_peer& a = w.add(nat::nat_type::open);
  arrg_peer& b = w.add(nat::nat_type::open);
  // A third peer that will die: its entry goes stale in a's view.
  arrg_peer& doomed = w.add(nat::nat_type::open);
  w.bootstrap_and_start();
  w.run_periods(5);
  (void)b;
  doomed.stop();
  w.transport.remove_node(doomed.id());
  w.run_periods(20);
  // At least one shuffle must have fallen back to the cache.
  std::uint64_t fallbacks = 0;
  for (const auto& p : w.peers) fallbacks += p->cache_fallbacks();
  EXPECT_GT(fallbacks, 0u);
  EXPECT_GT(a.stats().responses_received, 0u);
}

TEST(arrg_peer, ignores_nylon_control_messages) {
  arrg_world w;
  arrg_peer& a = w.add(nat::nat_type::open);
  arrg_peer& b = w.add(nat::nat_type::open);
  gossip::gossip_message ping;
  ping.kind = gossip::message_kind::ping;
  ping.sender = a.self();
  ping.src = a.self();
  ping.dest = b.self();
  w.transport.send(a.id(), w.transport.advertised_endpoint(b.id()),
                   make_message(ping));
  w.sched.run_for(sim::millis(200));
  EXPECT_EQ(b.stats().requests_received, 0u);
  EXPECT_EQ(w.transport.traffic(b.id()).msgs_sent, 0u);  // no PONG
}

TEST(peer_factory, builds_all_kinds) {
  arrg_world w;
  protocol_config cfg;
  for (const protocol_kind kind :
       {protocol_kind::reference, protocol_kind::nylon, protocol_kind::arrg}) {
    const auto p = make_peer(kind, w.transport, w.rng, cfg);
    ASSERT_NE(p, nullptr) << to_string(kind);
  }
}

TEST(peer_factory, kind_names) {
  EXPECT_EQ(to_string(protocol_kind::reference), "reference");
  EXPECT_EQ(to_string(protocol_kind::nylon), "nylon");
  EXPECT_EQ(to_string(protocol_kind::arrg), "arrg");
}

}  // namespace
}  // namespace nylon::core
