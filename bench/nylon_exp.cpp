// The one experiment driver: executes any declarative experiment spec
// (examples/specs/*.json) — sweep axes, typed probes, workload programs,
// per-spec profiles, table and BENCH_*.json emission — replacing the
// hand-rolled per-figure bench mains. Flags mirror the legacy sweep
// benches, so
//
//   nylon_exp examples/specs/fig3_stale.json --n 2000 --seeds 8 --json out.json
//
// behaves exactly like the old bench_fig3_stale did at those settings.
// Paper scale is per-spec: `--profile full` applies the spec's own
// "profiles.full" override block (explicit flags still win). Exits
// non-zero when any check probe failed.
#include <exception>
#include <iostream>
#include <string>
#include <vector>

#include "obs/heartbeat.h"
#include "obs/msglog.h"
#include "obs/trace.h"
#include "runtime/spec.h"
#include "metrics/probe.h"
#include "util/flags.h"
#include "util/wall_timer.h"

int main(int argc, char** argv) {
  using namespace nylon;
  util::flag_set flags;
  const auto* n = flags.add_int("n", 600, "population size");
  const auto* seeds = flags.add_int("seeds", 1, "independent seeds per point");
  const auto* rounds =
      flags.add_int("rounds", 100, "shuffle periods before measuring");
  const auto* view_a =
      flags.add_int("view-a", 8, "small view size, resolves $view_a");
  const auto* view_b =
      flags.add_int("view-b", 15, "large view size, resolves $view_b");
  const auto* seed = flags.add_int("seed", 1, "base seed");
  const auto* csv = flags.add_bool("csv", false, "emit CSV instead of a table");
  const auto* profile = flags.add_string(
      "profile", "",
      "apply the spec's named profile (e.g. \"full\" = that spec's "
      "paper-scale block; explicit flags win)");
  const auto* threads = flags.add_int(
      "threads", 0, "worker threads across seeds (0 = all cores, 1 = serial)");
  const auto* shards = flags.add_int(
      "shards", 0,
      "shards per universe (0 = serial engine; K >= 1 = sharded engine, "
      "byte-identical for every K)");
  const auto* window_mode = flags.add_string(
      "window-mode", "adaptive",
      "sharded epoch-width policy: adaptive (stride to the next event "
      "plus lookahead) | static (fixed min-latency window); digests are "
      "identical either way");
  const auto* json = flags.add_string(
      "json", "", "also write machine-readable results to this file");
  const auto* transport = flags.add_string(
      "transport", "sim",
      "datagram carrier: sim | sim-frames (serialized frames in-sim, "
      "byte-identical digests) | udp (real loopback sockets)");
  const auto* udp_time_scale = flags.add_double(
      "udp-time-scale", 0.0,
      "udp pacing in wall seconds per simulated second (0 = default 0.02)");
  const auto* latency_model = flags.add_string(
      "latency-model", "fixed",
      "one-way delay distribution: fixed | uniform | lognormal");
  const auto* latency_ms = flags.add_int(
      "latency-ms", 50,
      "latency parameter: fixed value / uniform lower bound / "
      "lognormal median");
  const auto* latency_max_ms =
      flags.add_int("latency-max-ms", 50, "uniform model upper bound");
  const auto* latency_sigma =
      flags.add_double("latency-sigma", 0.25, "lognormal log-space sigma");
  const auto* trajectories = flags.add_bool(
      "trajectories", false,
      "record per-seed workload trajectories into the JSON report");
  const auto* timeline = flags.add_bool(
      "timeline", false,
      "record the sim-time health timeline even when the spec has no "
      "\"timeline\" block (default passive columns, 5 s period)");
  const auto* timeline_period = flags.add_double(
      "timeline-period", 0.0,
      "override the timeline sampling period in sim seconds (0 = the "
      "spec's own / the 5 s default; implies --timeline)");
  const auto* timeline_csv = flags.add_string(
      "timeline-csv", "",
      "also write the timeline as long-form CSV to this file "
      "(implies --timeline)");
  const auto* msglog = flags.add_int(
      "msglog", 0,
      "message lifecycle flight recorder: sample one in N sent messages "
      "(0 = off, 1 = every message); a failed check dumps the sampled "
      "flight records to stderr");
  const auto* msglog_dump = flags.add_string(
      "msglog-dump", "",
      "write the whole flight recording as JSON to this file at exit "
      "(requires --msglog)");
  const auto* trace_path = flags.add_string(
      "trace", "", "write a Chrome/Perfetto trace of the run to this file");
  const auto* heartbeat_s = flags.add_double(
      "heartbeat", 0.0,
      "print a progress line to stderr every SEC wall seconds (0 = off)");
  const auto* validate_only = flags.add_bool(
      "validate", false, "parse and validate the spec, then exit");
  const auto* list_probes =
      flags.add_bool("list-probes", false, "list the probe registry");
  const auto* list_transports = flags.add_bool(
      "list-transports", false, "list transport backends and constraints");
  const auto* help = flags.add_bool("help", false, "print usage");

  const std::string usage_name = "nylon_exp <spec.json>";
  std::vector<std::string> positional;
  try {
    positional = flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage(usage_name);
    return 1;
  }
  if (*help) {
    std::cout << flags.usage(usage_name);
    return 0;
  }
  if (*list_probes) {
    for (const metrics::probe& p : metrics::all_probes()) {
      std::cout << p.name << "  [" << metrics::to_string(p.kind) << "]\n"
                << "    " << p.description << "\n";
    }
    return 0;
  }
  if (*list_transports) {
    std::cout
        << "sim  [default]\n"
        << "    in-memory payload structs through the event queue; the\n"
        << "    golden-digest-pinned engine (serial or --shards K)\n"
        << "sim-frames\n"
        << "    every datagram rides as its serialized v1 wire frame,\n"
        << "    decoded before dispatch; state digests byte-identical\n"
        << "    to sim (serial or --shards K)\n"
        << "udp\n"
        << "    real nonblocking UDP sockets on loopback, one per\n"
        << "    simulated public endpoint; wall-clock paced via\n"
        << "    --udp-time-scale. Constraints: --shards 0 (serial\n"
        << "    engine only), runs in real time, timing-dependent (its\n"
        << "    own stream, no digest pins)\n";
    return 0;
  }
  if (positional.size() != 1) {
    std::cerr << "exactly one spec file expected\n" << flags.usage(usage_name);
    return 1;
  }
  if (*threads < 0) {
    std::cerr << "--threads must be >= 0 (0 = all cores)\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (*shards < 0) {
    std::cerr << "--shards must be >= 0 (0 = serial engine)\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (*latency_model != "fixed" && *latency_model != "uniform" &&
      *latency_model != "lognormal") {
    std::cerr << "--latency-model must be fixed, uniform or lognormal\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (*window_mode != "static" && *window_mode != "adaptive") {
    std::cerr << "--window-mode must be static or adaptive\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (*transport != "sim" && *transport != "sim-frames" && *transport != "udp") {
    std::cerr << "--transport must be sim, sim-frames or udp "
                 "(see --list-transports)\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (*transport == "udp" && *shards != 0) {
    std::cerr << "--transport udp requires --shards 0 (serial engine; "
                 "see --list-transports)\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (*udp_time_scale < 0) {
    std::cerr << "--udp-time-scale must be >= 0 (0 = default)\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (*timeline_period < 0) {
    std::cerr << "--timeline-period must be >= 0 (0 = spec default)\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (*msglog < 0) {
    std::cerr << "--msglog must be >= 0 (0 = off)\n"
              << flags.usage(usage_name);
    return 1;
  }
  if (!msglog_dump->empty() && *msglog == 0) {
    std::cerr << "--msglog-dump requires --msglog N\n"
              << flags.usage(usage_name);
    return 1;
  }

  runtime::spec_options opt;
  opt.peers = static_cast<std::size_t>(*n);
  opt.seeds = static_cast<int>(*seeds);
  opt.rounds = static_cast<int>(*rounds);
  opt.view_a = static_cast<std::size_t>(*view_a);
  opt.view_b = static_cast<std::size_t>(*view_b);
  opt.csv = *csv;
  opt.seed = static_cast<std::uint64_t>(*seed);
  opt.threads = static_cast<int>(*threads);
  opt.shards = static_cast<std::size_t>(*shards);
  opt.window_mode = *window_mode;
  opt.json = *json;
  opt.transport = *transport;
  opt.udp_time_scale = *udp_time_scale;
  opt.latency_model = *latency_model;
  opt.latency_ms = *latency_ms;
  opt.latency_max_ms = *latency_max_ms;
  opt.latency_sigma = *latency_sigma;
  opt.trajectories = *trajectories;
  opt.timeline = *timeline || *timeline_period > 0 || !timeline_csv->empty();
  opt.timeline_period_s = *timeline_period;
  opt.timeline_csv = *timeline_csv;
  opt.profile = *profile;
  opt.peers_explicit = flags.provided("n");
  opt.seeds_explicit = flags.provided("seeds");
  opt.rounds_explicit = flags.provided("rounds");
  opt.view_a_explicit = flags.provided("view-a");
  opt.view_b_explicit = flags.provided("view-b");

  try {
    const runtime::experiment_spec spec =
        runtime::load_spec_file(positional.front());
    if (*validate_only) {
      std::cout << positional.front() << ": ok (" << spec.name << ")\n";
      return 0;
    }
    // Telemetry output stays on stderr: run_spec's stdout (and its JSON
    // report) are pinned byte-for-byte by the equivalence tests.
    if (!trace_path->empty()) obs::start_trace();
    if (*msglog > 0) obs::msglog_start(static_cast<std::uint64_t>(*msglog));
    const obs::heartbeat beat(*heartbeat_s);
    util::wall_timer total;
    const util::json report = runtime::run_spec(spec, opt, std::cout);
    obs::stop_trace();
    std::cerr << "# nylon_exp: " << spec.name << " finished in "
              << total.seconds() << " s\n";
    if (!trace_path->empty()) {
      if (!obs::write_trace_file(*trace_path)) return 1;
      const obs::trace_stats stats = obs::trace_statistics();
      std::cerr << "# trace: " << stats.recorded << " spans from "
                << stats.threads << " threads -> " << *trace_path << "\n";
    }
    if (*msglog > 0) {
      const obs::msglog_stats stats = obs::msglog_statistics();
      std::cerr << "# msglog: " << stats.recorded << " hops held ("
                << stats.dropped << " evicted) from " << stats.threads
                << " threads\n";
      if (!msglog_dump->empty()) {
        util::write_json_file(*msglog_dump, obs::msglog_to_json());
        std::cerr << "# msglog: recording -> " << *msglog_dump << "\n";
      }
      obs::msglog_stop();
    }
    if (!runtime::all_checks_passed(report)) return 1;
  } catch (const std::exception& e) {
    std::cerr << "nylon_exp: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
