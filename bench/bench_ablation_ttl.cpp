// Ablation A2: sensitivity to the NAT hole timeout (the paper fixes 90 s,
// "a typical vendor value"). Shorter rule lifetimes stress the reactive
// chains; longer ones relax them.
#include <iostream>

#include "bench_common.h"
#include "core/nylon_peer.h"
#include "metrics/graph_analysis.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_ablation_ttl");
  bench::print_preamble(
      "Ablation: hole-timeout sensitivity (Nylon, 80% NAT)", opt);

  runtime::text_table table({"hole timeout (s)", "cluster %", "stale %",
                             "punch success %", "mean chain"});
  for (const int ttl_s : {15, 30, 60, 90, 180}) {
    const auto aggs = runtime::run_seeds_multi(
        opt.seeds, opt.seed, 4, [&](std::uint64_t seed) {
          runtime::experiment_config cfg = bench::base_config(opt);
          cfg.protocol = core::protocol_kind::nylon;
          cfg.natted_fraction = 0.8;
          cfg.hole_timeout = sim::seconds(ttl_s);
          cfg.seed = seed;
          runtime::scenario world(cfg);
          world.run_periods(opt.rounds);
          const auto oracle = world.oracle();
          const auto clusters = metrics::measure_clusters(
              world.transport(), world.peers(), oracle);
          const auto views = metrics::measure_views(world.transport(),
                                                    world.peers(), oracle);
          std::uint64_t started = 0;
          std::uint64_t completed = 0;
          util::running_stats chains;
          for (const auto& p : world.peers()) {
            const auto* np = dynamic_cast<const core::nylon_peer*>(p.get());
            started += np->nat_stats().punches_started;
            completed += np->nat_stats().punches_completed;
            chains.merge(np->nat_stats().punch_chain_hops);
          }
          const double success =
              started > 0 ? 100.0 * static_cast<double>(completed) /
                                static_cast<double>(started)
                          : 0.0;
          return std::vector<double>{clusters.biggest_cluster_pct,
                                     views.stale_pct, success,
                                     chains.count() ? chains.mean() : 0.0};
        },
          opt.run());
    table.add_row({std::to_string(ttl_s), runtime::fmt(aggs[0].stats.mean),
                   runtime::fmt(aggs[1].stats.mean),
                   runtime::fmt(aggs[2].stats.mean),
                   runtime::fmt(aggs[3].stats.mean, 2)});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::emit_table_json(opt, "ablation_ttl", table);
  std::cout << "\n# expectation: short timeouts raise staleness and punch "
               "failures; beyond the\n"
            << "# paper's 90 s the gains flatten out (chains are refreshed "
               "reactively anyway).\n";
  return 0;
}
