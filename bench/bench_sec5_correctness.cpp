// §5 "Correctness" for Nylon: no partitions, no stale references, and a
// statistical randomness battery over the sampled peer ids (our substitute
// for the diehard suite — see DESIGN.md).
#include <iostream>
#include <vector>

#include "bench_common.h"
#include "metrics/graph_analysis.h"
#include "metrics/randomness.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_sec5_correctness");
  bench::print_preamble("Sec. 5 correctness: partitions, staleness, "
                        "randomness battery (diehard substitute)",
                        opt);

  runtime::text_table table({"%NAT", "biggest cluster %", "clusters",
                             "stale %", "chi2 p", "runs p", "serial",
                             "in-deg sigma/mean"});

  for (const int pct : {0, 20, 40, 60, 80, 90}) {
    runtime::experiment_config cfg = bench::base_config(opt);
    cfg.protocol = core::protocol_kind::nylon;
    cfg.natted_fraction = pct / 100.0;
    cfg.seed = opt.seed;
    runtime::scenario world(cfg);
    world.run_periods(opt.rounds);

    const auto oracle = world.oracle();
    const auto clusters =
        metrics::measure_clusters(world.transport(), world.peers(), oracle);
    const auto views =
        metrics::measure_views(world.transport(), world.peers(), oracle);

    // Randomness battery over the ids the sampling service returns, one
    // sample per peer per pass so consecutive stream elements come from
    // independent views.
    std::vector<std::uint32_t> sampled;
    for (int k = 0; k < 8; ++k) {
      for (const auto& p : world.peers()) {
        if (const auto s = p->sample()) sampled.push_back(s->id);
      }
    }
    const auto battery = metrics::run_battery(sampled, cfg.peer_count);

    const auto degrees = metrics::in_degrees(world.transport(), world.peers());
    util::running_stats degree_stats;
    for (const std::size_t d : degrees) {
      degree_stats.add(static_cast<double>(d));
    }
    const double dispersion =
        degree_stats.mean() > 0 ? degree_stats.stddev() / degree_stats.mean()
                                : 0.0;

    table.add_row({std::to_string(pct),
                   runtime::fmt(clusters.biggest_cluster_pct),
                   std::to_string(clusters.cluster_count),
                   runtime::fmt(views.stale_pct, 2),
                   runtime::fmt(battery.frequency.p_value, 3),
                   runtime::fmt(battery.runs.p_value, 3),
                   runtime::fmt(battery.serial, 4),
                   runtime::fmt(dispersion, 2)});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  std::cout
      << "\n# paper claims: single cluster, no stale references, diehard "
         "passed.\n"
      << "# ours: single cluster, ~0-3% transient staleness; runs/serial "
         "tests pass.\n"
      << "# the chi-square frequency test detects the residual "
         "public-vs-natted composition bias\n"
      << "# analysed in EXPERIMENTS.md (the paper does not quantify this "
         "dimension).\n";
  return 0;
}
