// Reproduces the §2.2 traversal-technique table, and *verifies* every cell
// by executing the prescribed technique packet-by-packet through real NAT
// devices (a cell is printed with "!" if the verification failed).
#include <iostream>

#include "metrics/traversal_check.h"
#include "nat/traversal.h"
#include "runtime/table_printer.h"

int main() {
  using namespace nylon;
  using nat::nat_type;

  const nat_type types[] = {nat_type::open, nat_type::restricted_cone,
                            nat_type::port_restricted_cone,
                            nat_type::symmetric};

  std::cout << "# Table (Sec. 2.2): NAT traversal technique per (source, "
               "target) NAT type\n"
            << "# each cell verified by packet-level execution through NAT "
               "device models\n\n";

  runtime::text_table table({"src \\ target", "public", "RC", "PRC", "SYM"});
  bool all_verified = true;
  for (const nat_type src : types) {
    std::vector<std::string> row{std::string(nat::to_string(src))};
    for (const nat_type dst : types) {
      const auto technique = nat::technique_for(src, dst);
      const auto outcome = metrics::execute_prescribed(src, dst);
      std::string cell{nat::to_string(technique)};
      if (!outcome.exchange_completed()) {
        cell += " !";
        all_verified = false;
      }
      row.push_back(std::move(cell));
    }
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\nverification: "
            << (all_verified ? "all 16 cells completed the exchange"
                             : "SOME CELLS FAILED")
            << "\n";
  return all_verified ? 0 : 1;
}
