// Micro-benchmarks (google-benchmark) for the hot paths of the simulator:
// RNG, event queue, view merge, NAT translation/filtering, routing table.
#include <benchmark/benchmark.h>

#include "core/routing_table.h"
#include "gossip/view.h"
#include "nat/nat_device.h"
#include "sim/event_queue.h"
#include "util/flat_hash.h"
#include "util/rng.h"

namespace {

using namespace nylon;

void bm_rng_uniform(benchmark::State& state) {
  util::rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.uniform(0, 999));
  }
}
BENCHMARK(bm_rng_uniform);

void bm_event_queue_push_pop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::event_queue q;
    for (std::size_t i = 0; i < batch; ++i) {
      q.push(static_cast<sim::sim_time>(i % 97), [] {});
    }
    while (!q.empty()) q.pop_and_run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(bm_event_queue_push_pop)->Arg(256)->Arg(4096);

void bm_view_merge(benchmark::State& state) {
  util::rng rng(2);
  const auto policy = static_cast<gossip::merge_policy>(state.range(0));
  gossip::view v(15);
  std::vector<gossip::view_entry> initial;
  for (net::node_id i = 1; i <= 15; ++i) {
    initial.push_back(gossip::view_entry{
        gossip::node_descriptor{i, {net::ip_address{i}, 1}, {}}, i, 0});
  }
  v.assign(initial, 0);
  std::vector<gossip::view_entry> received;
  for (net::node_id i = 10; i < 26; ++i) {
    received.push_back(gossip::view_entry{
        gossip::node_descriptor{i, {net::ip_address{i}, 1}, {}}, 0, 0});
  }
  for (auto _ : state) {
    gossip::view copy = v;
    copy.merge(received, initial, policy, 0, rng);
    benchmark::DoNotOptimize(copy.size());
  }
}
BENCHMARK(bm_view_merge)
    ->Arg(static_cast<int>(gossip::merge_policy::blind))
    ->Arg(static_cast<int>(gossip::merge_policy::healer))
    ->Arg(static_cast<int>(gossip::merge_policy::swapper));

void bm_nat_translate_and_filter(benchmark::State& state) {
  const auto type = static_cast<nat::nat_type>(state.range(0));
  nat::nat_device dev(type, net::ip_address{0x0A000001}, sim::seconds(90));
  const net::endpoint priv{net::ip_address{0xAC100001}, 5000};
  sim::sim_time now = 0;
  for (auto _ : state) {
    const net::endpoint remote{net::ip_address{0x0A000002},
                               1000 + static_cast<std::uint32_t>(now % 16)};
    const net::endpoint pub = dev.translate_outbound(priv, remote, now);
    benchmark::DoNotOptimize(dev.filter_inbound(pub, remote, now));
    ++now;
  }
}
BENCHMARK(bm_nat_translate_and_filter)
    ->Arg(static_cast<int>(nat::nat_type::restricted_cone))
    ->Arg(static_cast<int>(nat::nat_type::port_restricted_cone))
    ->Arg(static_cast<int>(nat::nat_type::symmetric));

void bm_routing_table_lookup(benchmark::State& state) {
  core::routing_table rt(sim::seconds(90));
  for (net::node_id i = 0; i < 64; ++i) {
    rt.touch_direct(i, {net::ip_address{i}, 1}, 0);
  }
  for (net::node_id i = 64; i < 512; ++i) {
    rt.learn_route(i, i % 64, sim::seconds(60), 0);
  }
  net::node_id dest = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rt.next_rvp(dest, 10));
    dest = 64 + (dest + 1) % 448;
  }
}
BENCHMARK(bm_routing_table_lookup);

void bm_rng_sample_indices(benchmark::State& state) {
  util::rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.sample_indices(10000, 15));
  }
}
BENCHMARK(bm_rng_sample_indices);

void bm_flat_hash_find(benchmark::State& state) {
  const auto population = static_cast<std::uint32_t>(state.range(0));
  util::flat_hash_map<std::uint32_t, std::uint64_t> m;
  for (std::uint32_t i = 0; i < population; ++i) {
    m.insert_or_get(i * 7) = i;
  }
  std::uint32_t probe = 0;
  for (auto _ : state) {
    // Alternates hits and misses, like routing-table lookups do.
    benchmark::DoNotOptimize(m.find(probe));
    probe = (probe + 3) % (population * 14);
  }
}
BENCHMARK(bm_flat_hash_find)->Arg(64)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
