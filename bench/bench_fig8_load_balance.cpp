// Fig. 8: average bytes/s sent+received by public vs natted peers, vs
// %NAT — Nylon's claim that the relay load is spread evenly.
#include <iostream>

#include "bench_common.h"
#include "metrics/bandwidth.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_fig8_load_balance");
  bench::print_preamble(
      "Fig. 8: bytes/s for public vs natted peers (Nylon)", opt);

  runtime::text_table table(
      {"%NAT", "public B/s", "natted B/s", "public/natted"});
  for (const int pct : {10, 20, 40, 60, 80, 90}) {
    const auto aggs = runtime::run_seeds_multi(
        opt.seeds, opt.seed, 2, [&](std::uint64_t seed) {
          runtime::experiment_config cfg = bench::base_config(opt);
          cfg.protocol = core::protocol_kind::nylon;
          cfg.natted_fraction = pct / 100.0;
          cfg.seed = seed;
          runtime::scenario world(cfg);
          const int warmup = opt.rounds / 2;
          world.run_periods(warmup);
          world.transport().reset_traffic();
          world.run_periods(opt.rounds - warmup);
          const auto report = metrics::measure_bandwidth(
              world.transport(), world.peers(),
              (opt.rounds - warmup) * cfg.gossip.shuffle_period);
          return std::vector<double>{report.public_bytes_per_s,
                                     report.natted_bytes_per_s};
        },
          opt.run());
    const double pub = aggs[0].stats.mean;
    const double natted = aggs[1].stats.mean;
    table.add_row({std::to_string(pct), runtime::fmt(pub),
                   runtime::fmt(natted),
                   runtime::fmt(natted > 0 ? pub / natted : 0.0, 2)});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::emit_table_json(opt, "fig8_load_balance", table);
  std::cout << "\n# paper shape: public peers send/receive 10-20% *less* "
               "than natted peers\n"
            << "# (they get no OPEN_HOLEs for themselves and send no "
               "PONGs).\n";
  return 0;
}
