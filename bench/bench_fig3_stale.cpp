// Fig. 3: average percentage of stale view references vs %NAT for the
// (pushpull, rand, healer) baseline, view sizes small/large. §3 setup
// (PRC-only NATs).
#include <iostream>

#include "bench_common.h"
#include "metrics/graph_analysis.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_fig3_stale");
  bench::print_preamble(
      "Fig. 3: % stale references vs %NAT (pushpull,rand,healer)", opt);

  runtime::text_table table({"%NAT",
                             "stale% view=" + std::to_string(opt.view_a),
                             "stale% view=" + std::to_string(opt.view_b)});
  for (int pct = 0; pct <= 100; pct += 10) {
    std::vector<std::string> row{std::to_string(pct)};
    for (const std::size_t view_size : {opt.view_a, opt.view_b}) {
      const auto agg = runtime::run_seeds(
          opt.seeds, opt.seed, [&](std::uint64_t seed) {
            runtime::experiment_config cfg = bench::base_config(opt);
            cfg.protocol = core::protocol_kind::reference;
            cfg.gossip.view_size = view_size;
            cfg.mix = nat::prc_only_mix();
            cfg.natted_fraction = pct / 100.0;
            cfg.seed = seed;
            runtime::scenario world(cfg);
            world.run_periods(opt.rounds);
            const auto oracle = world.oracle();
            return metrics::measure_views(world.transport(), world.peers(),
                                          oracle)
                .stale_pct;
          },
          opt.run());
      row.push_back(runtime::fmt(agg.stats.mean));
    }
    table.add_row(std::move(row));
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::emit_table_json(opt, "fig3_stale", table);
  std::cout << "\n# paper shape: staleness grows ~linearly with %NAT and is "
               "higher for the larger view.\n";
  return 0;
}
