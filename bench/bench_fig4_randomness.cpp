// Fig. 4: among the *usable* (non-stale) view references, the percentage
// that point at natted peers, vs %NAT — the paper's measure of sampling
// bias for the (pushpull, rand, healer) baseline. A uniform sampler would
// sit on the diagonal. The Nylon column is our addition (the paper states
// Nylon preserves randomness; §5 "Correctness").
#include <iostream>

#include "bench_common.h"
#include "metrics/graph_analysis.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_fig4_randomness");
  bench::print_preamble(
      "Fig. 4: natted share of usable references vs %NAT", opt);

  runtime::text_table table(
      {"%NAT", "baseline view=" + std::to_string(opt.view_a),
       "baseline view=" + std::to_string(opt.view_b),
       "nylon view=" + std::to_string(opt.view_a), "uniform (ideal)"});

  auto natted_share = [&](core::protocol_kind kind, std::size_t view_size,
                          int pct) {
    return runtime::run_seeds(
               opt.seeds, opt.seed,
               [&](std::uint64_t seed) {
                 runtime::experiment_config cfg = bench::base_config(opt);
                 cfg.protocol = kind;
                 cfg.gossip.view_size = view_size;
                 cfg.mix = kind == core::protocol_kind::reference
                               ? nat::prc_only_mix()
                               : nat::paper_mix();
                 cfg.natted_fraction = pct / 100.0;
                 cfg.seed = seed;
                 runtime::scenario world(cfg);
                 world.run_periods(opt.rounds);
                 const auto oracle = world.oracle();
                 return metrics::measure_views(world.transport(),
                                               world.peers(), oracle)
                     .fresh_natted_pct;
               },
          opt.run())
        .stats.mean;
  };

  for (int pct = 0; pct <= 100; pct += 10) {
    table.add_row(
        {std::to_string(pct),
         runtime::fmt(
             natted_share(core::protocol_kind::reference, opt.view_a, pct)),
         runtime::fmt(
             natted_share(core::protocol_kind::reference, opt.view_b, pct)),
         runtime::fmt(
             natted_share(core::protocol_kind::nylon, opt.view_a, pct)),
         std::to_string(pct)});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::emit_table_json(opt, "fig4_randomness", table);
  std::cout << "\n# paper shape: the baseline sits far below the diagonal "
               "(natted peers undersampled);\n"
            << "# Nylon tracks the diagonal much more closely.\n";
  return 0;
}
