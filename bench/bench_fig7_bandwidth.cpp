// Fig. 7: average bytes/s sent+received per peer vs %NAT — Nylon against
// the (pushpull, rand, healer) reference.
#include <iostream>

#include "bench_common.h"
#include "metrics/bandwidth.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_fig7_bandwidth");
  bench::print_preamble("Fig. 7: bytes/s per peer vs %NAT, Nylon vs reference",
                        opt);

  auto bytes_per_s = [&](core::protocol_kind kind, int pct) {
    return runtime::run_seeds(
               opt.seeds, opt.seed,
               [&](std::uint64_t seed) {
                 runtime::experiment_config cfg = bench::base_config(opt);
                 cfg.protocol = kind;
                 cfg.natted_fraction = pct / 100.0;
                 cfg.seed = seed;
                 runtime::scenario world(cfg);
                 // Warm up, then measure steady state only.
                 const int warmup = opt.rounds / 2;
                 world.run_periods(warmup);
                 world.transport().reset_traffic();
                 world.run_periods(opt.rounds - warmup);
                 return metrics::measure_bandwidth(
                            world.transport(), world.peers(),
                            (opt.rounds - warmup) *
                                cfg.gossip.shuffle_period)
                     .all_bytes_per_s;
               },
          opt.run())
        .stats.mean;
  };

  runtime::text_table table({"%NAT", "nylon B/s", "reference B/s", "ratio"});
  for (const int pct : {0, 20, 40, 60, 80, 90, 100}) {
    const double nylon_bw = bytes_per_s(core::protocol_kind::nylon, pct);
    const double ref_bw = bytes_per_s(core::protocol_kind::reference, pct);
    table.add_row({std::to_string(pct), runtime::fmt(nylon_bw),
                   runtime::fmt(ref_bw),
                   runtime::fmt(ref_bw > 0 ? nylon_bw / ref_bw : 0.0, 2)});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::emit_table_json(opt, "fig7_bandwidth", table);
  std::cout << "\n# paper shape: Nylon stays within a small factor of the "
               "reference (<350 B/s at\n"
            << "# paper scale) and grows sub-linearly with %NAT.\n";
  return 0;
}
