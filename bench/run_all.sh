#!/usr/bin/env sh
# Runs every figure/ablation bench and collects machine-readable results.
#
#   bench/run_all.sh [BUILD_DIR] [OUT_DIR] [extra bench flags...]
#
# Defaults: BUILD_DIR=build, OUT_DIR=bench_results. Extra flags are passed
# to every bench (e.g. --full, --threads 0, --n 2000).
#
# Most figure reproductions are declarative experiment specs executed by
# the nylon_exp driver (examples/specs/*.json); the rest are stand-alone
# binaries that still own their sweep loops.
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results}"
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

SPEC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)/examples/specs"

if [ ! -d "$BUILD_DIR" ]; then
  echo "build dir '$BUILD_DIR' not found — run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

# Declarative studies: one spec file each, all executed by nylon_exp.
SPEC_BENCHES="fig2_partition fig3_stale fig4_randomness fig7_bandwidth \
fig10_churn ablation_protocols ablation_ttl latency_sensitivity \
churn_recovery"
# Benches that take the common sweep flags (--threads/--json/...).
SWEEP_BENCHES="bench_fig8_load_balance bench_fig9_rvp_chain"
# Benches with their own CLI (no JSON emitter yet).
PLAIN_BENCHES="bench_table1_traversal bench_sec5_correctness"

status=0
if [ -x "$BUILD_DIR/nylon_exp" ]; then
  for spec in $SPEC_BENCHES; do
    echo "== $spec (spec) =="
    if "$BUILD_DIR/nylon_exp" "$SPEC_DIR/$spec.json" \
        --json "$OUT_DIR/BENCH_${spec}.json" "$@" \
        > "$OUT_DIR/spec_${spec}.txt" 2>&1; then
      tail -n +1 "$OUT_DIR/spec_${spec}.txt" | head -5
    else
      echo "FAILED — see $OUT_DIR/spec_${spec}.txt" >&2
      status=1
    fi
  done
else
  echo "== skip spec benches (nylon_exp not built) =="
fi

for bench in $SWEEP_BENCHES; do
  exe="$BUILD_DIR/$bench"
  if [ ! -x "$exe" ]; then
    echo "== skip $bench (not built) =="
    continue
  fi
  echo "== $bench =="
  if "$exe" --json "$OUT_DIR/BENCH_${bench#bench_}.json" "$@" \
      > "$OUT_DIR/${bench}.txt" 2>&1; then
    tail -n +1 "$OUT_DIR/${bench}.txt" | head -5
  else
    echo "FAILED — see $OUT_DIR/${bench}.txt" >&2
    status=1
  fi
done

for bench in $PLAIN_BENCHES; do
  exe="$BUILD_DIR/$bench"
  if [ ! -x "$exe" ]; then
    echo "== skip $bench (not built) =="
    continue
  fi
  echo "== $bench =="
  if ! "$exe" > "$OUT_DIR/${bench}.txt" 2>&1; then
    echo "FAILED — see $OUT_DIR/${bench}.txt" >&2
    status=1
  fi
done

echo
echo "Results in $OUT_DIR:"
ls -1 "$OUT_DIR"
exit $status
