#!/usr/bin/env sh
# Runs every figure/ablation study and collects machine-readable results.
#
#   bench/run_all.sh [BUILD_DIR] [OUT_DIR] [extra nylon_exp flags...]
#
# Defaults: BUILD_DIR=build, OUT_DIR=bench_results. Extra flags are passed
# to every spec run (e.g. --profile full, --threads 0, --n 2000).
#
# Every figure reproduction is a declarative experiment spec executed by
# the nylon_exp driver (examples/specs/*.json); the last hand-rolled
# bench mains were retired when the probe taxonomy landed. A non-zero
# nylon_exp exit also covers failed check probes (table1/sec5 verdicts).
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results}"
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

SPEC_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)/examples/specs"

if [ ! -d "$BUILD_DIR" ]; then
  echo "build dir '$BUILD_DIR' not found — run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
if [ ! -x "$BUILD_DIR/nylon_exp" ]; then
  echo "nylon_exp not built in '$BUILD_DIR'" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

# Declarative studies: one spec file each, all executed by nylon_exp.
SPEC_BENCHES="fig2_partition fig3_stale fig4_randomness fig7_bandwidth \
fig8_load_balance fig9_rvp_chain fig10_churn table1_traversal \
sec5_correctness ablation_protocols ablation_ttl latency_sensitivity \
churn_recovery udp_smoke"

status=0
for spec in $SPEC_BENCHES; do
  echo "== $spec (spec) =="
  if "$BUILD_DIR/nylon_exp" "$SPEC_DIR/$spec.json" \
      --json "$OUT_DIR/BENCH_${spec}.json" "$@" \
      > "$OUT_DIR/spec_${spec}.txt" 2>&1; then
    tail -n +1 "$OUT_DIR/spec_${spec}.txt" | head -5
  else
    echo "FAILED — see $OUT_DIR/spec_${spec}.txt" >&2
    status=1
  fi
done

echo
echo "Results in $OUT_DIR:"
ls -1 "$OUT_DIR"
exit $status
