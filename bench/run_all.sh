#!/usr/bin/env sh
# Runs every figure/ablation bench and collects machine-readable results.
#
#   bench/run_all.sh [BUILD_DIR] [OUT_DIR] [extra bench flags...]
#
# Defaults: BUILD_DIR=build, OUT_DIR=bench_results. Extra flags are passed
# to every bench (e.g. --full, --threads 0, --n 2000).
set -eu

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench_results}"
[ $# -ge 1 ] && shift
[ $# -ge 1 ] && shift

if [ ! -d "$BUILD_DIR" ]; then
  echo "build dir '$BUILD_DIR' not found — run: cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi
mkdir -p "$OUT_DIR"

# Benches that take the common sweep flags (--threads/--json/...).
SWEEP_BENCHES="bench_fig2_partition bench_fig3_stale bench_fig4_randomness \
bench_fig7_bandwidth bench_fig8_load_balance bench_fig9_rvp_chain \
bench_fig10_churn bench_ablation_protocols bench_ablation_ttl"
# Benches with their own CLI (no JSON emitter yet).
PLAIN_BENCHES="bench_table1_traversal bench_sec5_correctness"

status=0
for bench in $SWEEP_BENCHES; do
  exe="$BUILD_DIR/$bench"
  if [ ! -x "$exe" ]; then
    echo "== skip $bench (not built) =="
    continue
  fi
  echo "== $bench =="
  if "$exe" --json "$OUT_DIR/BENCH_${bench#bench_}.json" "$@" \
      > "$OUT_DIR/${bench}.txt" 2>&1; then
    tail -n +1 "$OUT_DIR/${bench}.txt" | head -5
  else
    echo "FAILED — see $OUT_DIR/${bench}.txt" >&2
    status=1
  fi
done

for bench in $PLAIN_BENCHES; do
  exe="$BUILD_DIR/$bench"
  if [ ! -x "$exe" ]; then
    echo "== skip $bench (not built) =="
    continue
  fi
  echo "== $bench =="
  if ! "$exe" > "$OUT_DIR/${bench}.txt" 2>&1; then
    echo "FAILED — see $OUT_DIR/${bench}.txt" >&2
    status=1
  fi
done

echo
echo "Results in $OUT_DIR:"
ls -1 "$OUT_DIR"
exit $status
