// Fig. 2: size of the biggest cluster vs percentage of NATted peers, for
// the six generic gossip configurations and two view sizes. §3 setup:
// PRC-only NATs, no churn, views bootstrapped with public peers.
#include <iostream>

#include "bench_common.h"
#include "metrics/graph_analysis.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "workload/report.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_fig2_partition");
  bench::print_preamble(
      "Fig. 2: biggest cluster (%) vs %NAT, 6 generic configs", opt);

  const int nat_percents[] = {40, 50, 60, 70, 80, 90, 100};

  workload::bench_report report("fig2_partition");
  report.param("peers", opt.peers);
  report.param("seeds", opt.seeds);
  report.param("rounds", opt.rounds);

  for (const std::size_t view_size : {opt.view_a, opt.view_b}) {
    std::cout << "\n== view size " << view_size << " ==\n";
    std::vector<std::string> headers{"config"};
    for (const int pct : nat_percents) {
      headers.push_back(std::to_string(pct) + "%");
    }
    runtime::text_table table(std::move(headers));

    for (std::uint8_t c = 0; c < gossip::baseline_config_count(); ++c) {
      const gossip::protocol_config proto =
          gossip::baseline_config(c, view_size);
      std::vector<std::string> row{config_label(proto)};
      for (const int pct : nat_percents) {
        const auto agg = runtime::run_seeds(
            opt.seeds, opt.seed, [&](std::uint64_t seed) {
              runtime::experiment_config cfg = bench::base_config(opt);
              cfg.protocol = core::protocol_kind::reference;
              cfg.gossip = proto;
              cfg.mix = nat::prc_only_mix();  // §3: PRC NATs only
              cfg.natted_fraction = pct / 100.0;
              cfg.seed = seed;
              runtime::scenario world(cfg);
              world.run_periods(opt.rounds);
              const auto oracle = world.oracle();
              return metrics::measure_clusters(world.transport(),
                                               world.peers(), oracle)
                  .biggest_cluster_pct;
            },
          opt.run());
        row.push_back(runtime::fmt(agg.stats.mean));
      }
      table.add_row(std::move(row));
    }
    if (opt.csv) {
      table.print_csv(std::cout);
    } else {
      table.print(std::cout);
    }
    report.add_table("view_" + std::to_string(view_size), table);
  }
  report.save(opt.json);
  std::cout << "\n# paper shape: partitions below 100% appear once %NAT "
               "crosses a threshold;\n"
            << "# the larger view size pushes the threshold right.\n";
  return 0;
}
