// Macro-scale throughput bench: one big universe (default 100,000 peers)
// under workload-engine churn, reporting wall-clock and events/second so
// the hot-path optimizations (pooled events, O(1) routing, flat NAT and
// routing tables) are tracked as numbers, not anecdotes.
//
//   bench_scale                         # 100k peers, ~a few minutes
//   bench_scale --n 2000 --warmup 10    # CI-sized smoke run
//
// Unlike the figure benches this one measures the *simulator*, not the
// paper: metrics collection is off during the run (snapshots are
// population counters only) and connectivity is measured once at the end.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "metrics/graph_analysis.h"
#include "runtime/experiment_config.h"
#include "runtime/scenario.h"
#include "util/flags.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nylon;

  util::flag_set flags;
  const auto* n = flags.add_int("n", 100000, "population size");
  const auto* warmup = flags.add_int("warmup", 30, "warm-up shuffle periods");
  const auto* churn_rounds =
      flags.add_int("churn-rounds", 60, "periods of Poisson churn");
  const auto* arrivals = flags.add_double(
      "arrivals", 50.0, "Poisson arrivals per second during churn");
  const auto* rebind = flags.add_double(
      "rebind-frac", 0.1, "fraction of natted peers re-bound mid-run");
  const auto* shards = flags.add_int(
      "shards", 0,
      "shards per universe (0 = serial engine; K >= 1 = sharded engine, "
      "byte-identical for every K)");
  const auto* seed = flags.add_int("seed", 1, "seed");
  const auto* json = flags.add_string(
      "json", "", "also write machine-readable results to this file");
  const auto* help = flags.add_bool("help", false, "print usage");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage("bench_scale");
    return 1;
  }
  if (*help) {
    std::cout << flags.usage("bench_scale");
    return 0;
  }
  if (*shards < 0) {
    std::cerr << "--shards must be >= 0 (0 = serial engine)\n"
              << flags.usage("bench_scale");
    return 1;
  }

  runtime::experiment_config cfg;
  cfg.peer_count = static_cast<std::size_t>(*n);
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 15;
  cfg.seed = static_cast<std::uint64_t>(*seed);
  cfg.shards = static_cast<std::size_t>(*shards);

  std::cout << "# bench_scale: n=" << cfg.peer_count << " warmup=" << *warmup
            << " churn_rounds=" << *churn_rounds << " arrivals=" << *arrivals
            << "/s rebind=" << *rebind << " shards=" << cfg.shards
            << " seed=" << cfg.seed << "\n";

  const auto t_build = std::chrono::steady_clock::now();
  runtime::scenario world(cfg);
  const double build_s = seconds_since(t_build);
  std::cout << "# built universe in " << build_s << " s\n";

  const sim::sim_time period = cfg.gossip.shuffle_period;
  workload::session_distribution sessions;
  sessions.k = workload::session_distribution::kind::pareto;
  sessions.mean = 20 * period;

  auto prog = workload::program{}
                  .then(workload::steady(*warmup * period))
                  .then(workload::nat_rebind(*rebind))
                  .then(workload::poisson_churn(*churn_rounds * period,
                                                *arrivals, sessions))
                  .then(workload::steady(5 * period));

  workload::engine_options opt;
  opt.measure = false;  // population-counter snapshots only
  workload::engine eng(world, std::move(prog), opt);

  const auto t_run = std::chrono::steady_clock::now();
  eng.run();
  const double run_s = seconds_since(t_run);
  const std::uint64_t events = world.events_executed();
  const double events_per_sec =
      run_s > 0 ? static_cast<double>(events) / run_s : 0.0;

  const auto t_measure = std::chrono::steady_clock::now();
  const auto oracle = world.oracle();
  const metrics::cluster_metrics clusters =
      metrics::measure_clusters(world.transport(), world.peers(), oracle);
  const std::uint64_t digest = world.state_digest();
  const double measure_s = seconds_since(t_measure);

  // Every line below except the *_wall_s / events_per_sec timings is a
  // pure function of (config, seed) — identical for any --shards K >= 1,
  // which the CI digest cross-check pins (state_digest covers views,
  // traffic, drops and the event count in one value).
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(digest));
  std::cout << "run_wall_s            " << run_s << "\n"
            << "events_executed       " << events << "\n"
            << "events_per_sec        " << events_per_sec << "\n"
            << "alive_peers           " << world.alive_count() << "\n"
            << "joined                " << eng.joined() << "\n"
            << "departed              " << eng.departed() << "\n"
            << "biggest_cluster_pct   " << clusters.biggest_cluster_pct << "\n"
            << "state_digest          " << digest_hex << "\n"
            << "final_measure_s       " << measure_s << "\n";

  workload::bench_report report("scale");
  report.param("n", static_cast<std::int64_t>(cfg.peer_count));
  report.param("warmup_periods", *warmup);
  report.param("churn_periods", *churn_rounds);
  report.param("arrivals_per_sec", *arrivals);
  report.param("rebind_frac", *rebind);
  report.param("shards", static_cast<std::int64_t>(cfg.shards));
  report.param("seed", static_cast<std::int64_t>(cfg.seed));
  util::json results = util::json::object();
  results["build_wall_s"] = build_s;
  results["run_wall_s"] = run_s;
  results["events_executed"] = events;
  results["events_per_sec"] = events_per_sec;
  results["alive_peers"] = static_cast<std::int64_t>(world.alive_count());
  results["joined"] = static_cast<std::int64_t>(eng.joined());
  results["departed"] = static_cast<std::int64_t>(eng.departed());
  results["biggest_cluster_pct"] = clusters.biggest_cluster_pct;
  results["state_digest"] = std::string(digest_hex);
  results["final_measure_s"] = measure_s;
  report.add("results", std::move(results));
  report.save(*json);
  return 0;
}
