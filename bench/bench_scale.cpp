// Macro-scale throughput bench: one big universe (default 100,000 peers)
// under workload-engine churn, reporting wall-clock and events/second so
// the hot-path optimizations (pooled events, O(1) routing, flat NAT and
// routing tables, SoA hot state, payload arenas) are tracked as numbers,
// not anecdotes.
//
//   bench_scale                         # 100k peers, ~a few minutes
//   bench_scale --n 2000 --warmup 10    # CI-sized smoke run
//   bench_scale --shards 4 --trace t.json --heartbeat 10
//   bench_scale --sweep-shards 1,2,4    # shard-scaling campaign, one JSON
//   bench_scale --profile million       # 1M-peer profile (reduced churn)
//
// Unlike the figure benches this one measures the *simulator*, not the
// paper: metrics collection is off during the run (snapshots are
// population counters only) and connectivity is measured once at the end.
//
// With --shards K >= 1 the run also reports the epoch profiler's
// per-shard work/wait split, the shard-imbalance factor and the barrier
// overhead; --trace writes a Chrome/Perfetto trace of the run. Both are
// observation-only: state_digest is byte-identical with or without them.
//
// With --sweep-shards K1,K2,... the same universe is run once per K,
// in-process and back to back. The sweep asserts the determinism
// contract as it goes — every K >= 1 must produce the identical state
// digest (the serial engine, K = 0, has its own digest family and is
// only compared against other K = 0 entries) — and the BENCH JSON gains
// a results.sweep array carrying the per-K events/s, the speedup curve
// relative to the first K, and the per-K epoch statistics (epochs run,
// mean/max epoch width in sim-ms, events per epoch), which bench/trend.py
// gates per (shards, window_mode). A digest mismatch exits non-zero after
// the JSON is written. --window-mode static|adaptive picks the epoch
// policy; digests are identical either way.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/graph_analysis.h"
#include "obs/counters.h"
#include "obs/heartbeat.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/experiment_config.h"
#include "runtime/scenario.h"
#include "util/flags.h"
#include "util/wall_timer.h"
#include "workload/engine.h"
#include "workload/report.h"

namespace {

using namespace nylon;

/// Everything one (config, K) run produces; the sweep collects one per K.
struct run_outcome {
  std::int64_t shards = 0;  // 0 = serial engine
  double build_s = 0.0;
  double run_s = 0.0;
  double measure_s = 0.0;
  std::uint64_t events = 0;
  double events_per_sec = 0.0;
  std::size_t alive = 0;
  std::uint64_t joined = 0;
  std::uint64_t departed = 0;
  double biggest_cluster_pct = 0.0;
  std::string digest_hex;
  obs::counter_snapshot counters;
  obs::epoch_profile profile;
};

struct run_params {
  std::int64_t warmup = 30;
  std::int64_t churn_rounds = 60;
  double arrivals = 50.0;
  double rebind = 0.1;
  double heartbeat_s = 0.0;
  bool trace = false;
};

/// Builds one universe, drives the workload program over it, measures
/// connectivity once at the end. Counters are scoped to the measured
/// run: universe construction has its own wall-clock line and would
/// otherwise dominate pool_event and hash churn.
run_outcome run_world(runtime::experiment_config cfg, const run_params& p) {
  run_outcome out;
  out.shards = static_cast<std::int64_t>(cfg.shards);

  util::wall_timer t_build;
  runtime::scenario world(cfg);
  out.build_s = t_build.seconds();
  std::cout << "# built universe in " << out.build_s << " s\n";

  const sim::sim_time period = cfg.gossip.shuffle_period;
  workload::session_distribution sessions;
  sessions.k = workload::session_distribution::kind::pareto;
  sessions.mean = 20 * period;

  auto prog = workload::program{}
                  .then(workload::steady(p.warmup * period))
                  .then(workload::nat_rebind(p.rebind))
                  .then(workload::poisson_churn(p.churn_rounds * period,
                                                p.arrivals, sessions))
                  .then(workload::steady(5 * period));

  workload::engine_options opt;
  opt.measure = false;  // population-counter snapshots only
  workload::engine eng(world, std::move(prog), opt);

  obs::reset_counters();
  if (p.trace) obs::start_trace();
  const obs::heartbeat beat(p.heartbeat_s);

  util::wall_timer t_run;
  eng.run();
  out.run_s = t_run.seconds();
  obs::stop_trace();
  out.events = world.events_executed();
  out.events_per_sec =
      out.run_s > 0 ? static_cast<double>(out.events) / out.run_s : 0.0;
  out.counters = obs::read_counters();
  out.profile = world.shard_profile();
  out.joined = eng.joined();
  out.departed = eng.departed();

  util::wall_timer t_measure;
  const auto oracle = world.oracle();
  const metrics::cluster_metrics clusters =
      metrics::measure_clusters(world.transport(), world.peers(), oracle);
  out.alive = world.alive_count();
  out.biggest_cluster_pct = clusters.biggest_cluster_pct;
  const std::uint64_t digest = world.state_digest();
  out.measure_s = t_measure.seconds();

  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(digest));
  out.digest_hex = digest_hex;
  return out;
}

/// Human-readable block for one run. Every line except the timings and
/// the telemetry block is a pure function of (config, seed) — identical
/// for any --shards K >= 1, which the sweep and the CI digest
/// cross-check pin (state_digest covers views, traffic, drops and the
/// event count in one value).
void print_outcome(const run_outcome& r) {
  std::cout << "run_wall_s            " << r.run_s << "\n"
            << "events_executed       " << r.events << "\n"
            << "events_per_sec        " << r.events_per_sec << "\n"
            << "alive_peers           " << r.alive << "\n"
            << "joined                " << r.joined << "\n"
            << "departed              " << r.departed << "\n"
            << "biggest_cluster_pct   " << r.biggest_cluster_pct << "\n"
            << "state_digest          " << r.digest_hex << "\n"
            << "final_measure_s       " << r.measure_s << "\n";
  if (r.shards > 0) {
    std::cout << "epochs                " << r.profile.epochs << "\n"
              << "epoch_width_ms_mean   " << r.profile.epoch_width_ms_mean
              << "\n"
              << "epoch_width_ms_max    " << r.profile.epoch_width_ms_max
              << "\n"
              << "events_per_epoch      " << r.profile.events_per_epoch
              << "\n";
  }
  if (!r.profile.empty()) {
    for (std::size_t s = 0; s < r.profile.shards.size(); ++s) {
      const obs::shard_profile& sp = r.profile.shards[s];
      std::cout << "shard[" << s << "] work_s=" << sp.work_s
                << " wait_s=" << sp.wait_s << " events=" << sp.events
                << " spin=" << sp.spin_waits << " park=" << sp.park_waits
                << "\n";
    }
    std::cout << "shard_imbalance       " << r.profile.imbalance() << "\n"
              << "barrier_overhead_pct  "
              << 100.0 * r.profile.barrier_overhead() << "\n";
  }
}

/// The per-run scalars every BENCH consumer reads (trend.py included).
util::json outcome_json(const run_outcome& r) {
  util::json results = util::json::object();
  results["build_wall_s"] = r.build_s;
  results["run_wall_s"] = r.run_s;
  results["events_executed"] = r.events;
  results["events_per_sec"] = r.events_per_sec;
  results["alive_peers"] = static_cast<std::int64_t>(r.alive);
  results["joined"] = static_cast<std::int64_t>(r.joined);
  results["departed"] = static_cast<std::int64_t>(r.departed);
  results["biggest_cluster_pct"] = r.biggest_cluster_pct;
  results["state_digest"] = r.digest_hex;
  results["final_measure_s"] = r.measure_s;
  if (r.shards > 0) {
    results["epochs"] = r.profile.epochs;
    results["epoch_width_ms_mean"] = r.profile.epoch_width_ms_mean;
    results["epoch_width_ms_max"] = r.profile.epoch_width_ms_max;
    results["events_per_epoch"] = r.profile.events_per_epoch;
  }
  return results;
}

/// "1,2,4" -> {1, 2, 4}; throws std::invalid_argument on junk.
std::vector<std::int64_t> parse_sweep(const std::string& text) {
  std::vector<std::int64_t> ks;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t comma = std::min(text.find(',', pos), text.size());
    const std::string item = text.substr(pos, comma - pos);
    std::size_t used = 0;
    const long long k = item.empty() ? -1 : std::stoll(item, &used);
    if (item.empty() || used != item.size() || k < 0) {
      throw std::invalid_argument("--sweep-shards: bad shard count '" + item +
                                  "'");
    }
    ks.push_back(k);
    pos = comma + 1;
  }
  return ks;
}

}  // namespace

int main(int argc, char** argv) {
  util::flag_set flags;
  auto* n = flags.add_int("n", 100000, "population size");
  auto* warmup = flags.add_int("warmup", 30, "warm-up shuffle periods");
  auto* churn_rounds =
      flags.add_int("churn-rounds", 60, "periods of Poisson churn");
  auto* arrivals = flags.add_double(
      "arrivals", 50.0, "Poisson arrivals per second during churn");
  const auto* rebind = flags.add_double(
      "rebind-frac", 0.1, "fraction of natted peers re-bound mid-run");
  const auto* shards = flags.add_int(
      "shards", 0,
      "shards per universe (0 = serial engine; K >= 1 = sharded engine, "
      "byte-identical for every K)");
  const auto* sweep_flag = flags.add_string(
      "sweep-shards", "",
      "comma-separated shard counts; runs the same universe once per K, "
      "asserts digest equality and emits a per-K speedup curve");
  const auto* window_mode = flags.add_string(
      "window-mode", "adaptive",
      "sharded epoch-width policy: adaptive (stride to the next event "
      "plus lookahead) | static (fixed min-latency window); digests are "
      "identical either way");
  const auto* profile_name = flags.add_string(
      "profile", "",
      "named parameter preset: 'ci' (n=2000, short churn) or 'million' "
      "(n=1000000, reduced churn); explicit flags win");
  const auto* seed = flags.add_int("seed", 1, "seed");
  const auto* json = flags.add_string(
      "json", "", "also write machine-readable results to this file");
  const auto* trace_path = flags.add_string(
      "trace", "", "write a Chrome/Perfetto trace of the run to this file");
  const auto* heartbeat_s = flags.add_double(
      "heartbeat", 0.0,
      "print a progress line to stderr every SEC wall seconds (0 = off)");
  const auto* help = flags.add_bool("help", false, "print usage");
  std::vector<std::int64_t> sweep;
  try {
    flags.parse(argc, argv);
    if (!sweep_flag->empty()) sweep = parse_sweep(*sweep_flag);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage("bench_scale");
    return 1;
  }
  if (*help) {
    std::cout << flags.usage("bench_scale");
    return 0;
  }
  if (*shards < 0) {
    std::cerr << "--shards must be >= 0 (0 = serial engine)\n"
              << flags.usage("bench_scale");
    return 1;
  }
  if (*window_mode != "static" && *window_mode != "adaptive") {
    std::cerr << "--window-mode must be static or adaptive\n"
              << flags.usage("bench_scale");
    return 1;
  }
  if (flags.provided("shards") && !sweep.empty()) {
    std::cerr << "--shards and --sweep-shards are mutually exclusive\n"
              << flags.usage("bench_scale");
    return 1;
  }

  // Profiles layer defaults under flags the user did not set: the CI
  // preset keeps smoke runs one flag long, and the million-peer preset
  // trades churn periods for population so a 1M-peer world stays
  // tractable (expect a long single-threaded build and a ~60 GB
  // footprint) while still exercising join/depart/rebind at scale.
  if (*profile_name == "ci") {
    if (!flags.provided("n")) *n = 2000;
    if (!flags.provided("warmup")) *warmup = 10;
    if (!flags.provided("churn-rounds")) *churn_rounds = 20;
  } else if (*profile_name == "million") {
    if (!flags.provided("n")) *n = 1000000;
    if (!flags.provided("warmup")) *warmup = 3;
    if (!flags.provided("churn-rounds")) *churn_rounds = 5;
    if (!flags.provided("arrivals")) *arrivals = 200.0;
  } else if (!profile_name->empty()) {
    std::cerr << "unknown --profile '" << *profile_name
              << "' (expected 'ci' or 'million')\n"
              << flags.usage("bench_scale");
    return 1;
  }

  runtime::experiment_config cfg;
  cfg.peer_count = static_cast<std::size_t>(*n);
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 15;
  cfg.seed = static_cast<std::uint64_t>(*seed);
  cfg.window_mode = *window_mode == "static" ? sim::window_mode::static_window
                                             : sim::window_mode::adaptive;

  run_params params;
  params.warmup = *warmup;
  params.churn_rounds = *churn_rounds;
  params.arrivals = *arrivals;
  params.rebind = *rebind;
  params.heartbeat_s = *heartbeat_s;

  // The list of shard counts to run: the sweep, or the one --shards K.
  const std::vector<std::int64_t> plan =
      sweep.empty() ? std::vector<std::int64_t>{*shards} : sweep;

  std::vector<run_outcome> outcomes;
  outcomes.reserve(plan.size());
  bool digests_ok = true;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    cfg.shards = static_cast<std::size_t>(plan[i]);
    // The trace covers the last run of the sweep (one file, one run).
    params.trace = !trace_path->empty() && i + 1 == plan.size();
    std::cout << "# bench_scale: n=" << cfg.peer_count << " warmup=" << *warmup
              << " churn_rounds=" << *churn_rounds << " arrivals=" << *arrivals
              << "/s rebind=" << *rebind << " shards=" << cfg.shards
              << (cfg.shards > 0 ? " window_mode=" + *window_mode : "")
              << " seed=" << cfg.seed
              << (profile_name->empty() ? ""
                                        : " (profile " + *profile_name + ")")
              << "\n";
    outcomes.push_back(run_world(cfg, params));
    print_outcome(outcomes.back());

    // Determinism contract, asserted as the sweep goes: every K >= 1
    // yields the same digest; the serial engine (K = 0) is its own
    // family and is only held against other serial entries.
    for (std::size_t j = 0; j < i; ++j) {
      const bool same_family = (plan[j] == 0) == (plan[i] == 0);
      if (same_family &&
          outcomes[j].digest_hex != outcomes.back().digest_hex) {
        std::cerr << "DIGEST MISMATCH: shards=" << plan[j] << " -> "
                  << outcomes[j].digest_hex << " but shards=" << plan[i]
                  << " -> " << outcomes.back().digest_hex << "\n";
        digests_ok = false;
      }
    }
  }

  workload::bench_report report("scale");
  report.param("n", static_cast<std::int64_t>(cfg.peer_count));
  report.param("warmup_periods", *warmup);
  report.param("churn_periods", *churn_rounds);
  report.param("arrivals_per_sec", *arrivals);
  report.param("rebind_frac", *rebind);
  report.param("shards", outcomes.back().shards);
  report.param("window_mode", *window_mode);
  if (!sweep.empty()) report.param("sweep_shards", *sweep_flag);
  if (!profile_name->empty()) report.param("profile", *profile_name);
  report.param("seed", static_cast<std::int64_t>(cfg.seed));

  // results carries the last run's scalars (so single-run consumers and
  // older tooling keep working) plus, for sweeps, the per-K curve.
  util::json results = outcome_json(outcomes.back());
  if (!sweep.empty()) {
    const double base_eps = outcomes.front().events_per_sec;
    util::json curve = util::json::array();
    for (const run_outcome& r : outcomes) {
      util::json row = util::json::object();
      row["shards"] = r.shards;
      row["build_wall_s"] = r.build_s;
      row["run_wall_s"] = r.run_s;
      row["events_executed"] = r.events;
      row["events_per_sec"] = r.events_per_sec;
      row["speedup_vs_first"] =
          base_eps > 0 ? r.events_per_sec / base_eps : 0.0;
      row["state_digest"] = r.digest_hex;
      if (r.shards > 0) {
        row["epochs"] = r.profile.epochs;
        row["epoch_width_ms_mean"] = r.profile.epoch_width_ms_mean;
        row["epoch_width_ms_max"] = r.profile.epoch_width_ms_max;
        row["events_per_epoch"] = r.profile.events_per_epoch;
      }
      if (!r.profile.empty()) {
        row["imbalance"] = r.profile.imbalance();
        row["barrier_overhead_pct"] = 100.0 * r.profile.barrier_overhead();
      }
      curve.push_back(std::move(row));
    }
    results["sweep"] = std::move(curve);
    results["digests_consistent"] = digests_ok;
    std::cout << "# sweep:";
    for (const run_outcome& r : outcomes) {
      std::cout << " K=" << r.shards << ":"
                << static_cast<std::uint64_t>(r.events_per_sec) << "ev/s";
    }
    std::cout << "\n";
  }
  report.add("results", std::move(results));

  util::json telemetry = util::json::object();
  telemetry["counters"] = obs::to_json(outcomes.back().counters);
  if (!outcomes.back().profile.empty()) {
    telemetry["profile"] = obs::to_json(outcomes.back().profile);
  }
  report.add("telemetry", std::move(telemetry));
  report.save(*json);

  if (!trace_path->empty()) {
    if (!obs::write_trace_file(*trace_path)) return 1;
    const obs::trace_stats stats = obs::trace_statistics();
    std::cerr << "# trace: " << stats.recorded << " spans from "
              << stats.threads << " threads -> " << *trace_path
              << (stats.dropped > 0
                      ? " (" + std::to_string(stats.dropped) + " dropped)"
                      : "")
              << "\n";
  }
  return digests_ok ? 0 : 1;
}
