// Macro-scale throughput bench: one big universe (default 100,000 peers)
// under workload-engine churn, reporting wall-clock and events/second so
// the hot-path optimizations (pooled events, O(1) routing, flat NAT and
// routing tables) are tracked as numbers, not anecdotes.
//
//   bench_scale                         # 100k peers, ~a few minutes
//   bench_scale --n 2000 --warmup 10    # CI-sized smoke run
//   bench_scale --shards 4 --trace t.json --heartbeat 10
//
// Unlike the figure benches this one measures the *simulator*, not the
// paper: metrics collection is off during the run (snapshots are
// population counters only) and connectivity is measured once at the end.
//
// With --shards K >= 1 the run also reports the epoch profiler's
// per-shard work/wait split, the shard-imbalance factor and the barrier
// overhead; --trace writes a Chrome/Perfetto trace of the run. Both are
// observation-only: state_digest is byte-identical with or without them.
#include <cstdio>
#include <iostream>
#include <string>

#include "metrics/graph_analysis.h"
#include "obs/counters.h"
#include "obs/heartbeat.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/experiment_config.h"
#include "runtime/scenario.h"
#include "util/flags.h"
#include "util/wall_timer.h"
#include "workload/engine.h"
#include "workload/report.h"

int main(int argc, char** argv) {
  using namespace nylon;

  util::flag_set flags;
  const auto* n = flags.add_int("n", 100000, "population size");
  const auto* warmup = flags.add_int("warmup", 30, "warm-up shuffle periods");
  const auto* churn_rounds =
      flags.add_int("churn-rounds", 60, "periods of Poisson churn");
  const auto* arrivals = flags.add_double(
      "arrivals", 50.0, "Poisson arrivals per second during churn");
  const auto* rebind = flags.add_double(
      "rebind-frac", 0.1, "fraction of natted peers re-bound mid-run");
  const auto* shards = flags.add_int(
      "shards", 0,
      "shards per universe (0 = serial engine; K >= 1 = sharded engine, "
      "byte-identical for every K)");
  const auto* seed = flags.add_int("seed", 1, "seed");
  const auto* json = flags.add_string(
      "json", "", "also write machine-readable results to this file");
  const auto* trace_path = flags.add_string(
      "trace", "", "write a Chrome/Perfetto trace of the run to this file");
  const auto* heartbeat_s = flags.add_double(
      "heartbeat", 0.0,
      "print a progress line to stderr every SEC wall seconds (0 = off)");
  const auto* help = flags.add_bool("help", false, "print usage");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage("bench_scale");
    return 1;
  }
  if (*help) {
    std::cout << flags.usage("bench_scale");
    return 0;
  }
  if (*shards < 0) {
    std::cerr << "--shards must be >= 0 (0 = serial engine)\n"
              << flags.usage("bench_scale");
    return 1;
  }

  runtime::experiment_config cfg;
  cfg.peer_count = static_cast<std::size_t>(*n);
  cfg.protocol = core::protocol_kind::nylon;
  cfg.gossip.view_size = 15;
  cfg.seed = static_cast<std::uint64_t>(*seed);
  cfg.shards = static_cast<std::size_t>(*shards);

  std::cout << "# bench_scale: n=" << cfg.peer_count << " warmup=" << *warmup
            << " churn_rounds=" << *churn_rounds << " arrivals=" << *arrivals
            << "/s rebind=" << *rebind << " shards=" << cfg.shards
            << " seed=" << cfg.seed << "\n";

  util::wall_timer t_build;
  runtime::scenario world(cfg);
  const double build_s = t_build.seconds();
  std::cout << "# built universe in " << build_s << " s\n";

  const sim::sim_time period = cfg.gossip.shuffle_period;
  workload::session_distribution sessions;
  sessions.k = workload::session_distribution::kind::pareto;
  sessions.mean = 20 * period;

  auto prog = workload::program{}
                  .then(workload::steady(*warmup * period))
                  .then(workload::nat_rebind(*rebind))
                  .then(workload::poisson_churn(*churn_rounds * period,
                                                *arrivals, sessions))
                  .then(workload::steady(5 * period));

  workload::engine_options opt;
  opt.measure = false;  // population-counter snapshots only
  workload::engine eng(world, std::move(prog), opt);

  // Scope the counters to the measured run: universe construction has
  // its own wall-clock line and would otherwise dominate pool_event
  // and hash churn.
  obs::reset_counters();
  if (!trace_path->empty()) obs::start_trace();
  const obs::heartbeat beat(*heartbeat_s);

  util::wall_timer t_run;
  eng.run();
  const double run_s = t_run.seconds();
  obs::stop_trace();
  const std::uint64_t events = world.events_executed();
  const double events_per_sec =
      run_s > 0 ? static_cast<double>(events) / run_s : 0.0;
  const obs::counter_snapshot counters = obs::read_counters();
  const obs::epoch_profile profile = world.shard_profile();

  util::wall_timer t_measure;
  const auto oracle = world.oracle();
  const metrics::cluster_metrics clusters =
      metrics::measure_clusters(world.transport(), world.peers(), oracle);
  const std::uint64_t digest = world.state_digest();
  const double measure_s = t_measure.seconds();

  // Every line below except the *_wall_s / events_per_sec timings and
  // the telemetry block is a pure function of (config, seed) — identical
  // for any --shards K >= 1, which the CI digest cross-check pins
  // (state_digest covers views, traffic, drops and the event count in
  // one value).
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(digest));
  std::cout << "run_wall_s            " << run_s << "\n"
            << "events_executed       " << events << "\n"
            << "events_per_sec        " << events_per_sec << "\n"
            << "alive_peers           " << world.alive_count() << "\n"
            << "joined                " << eng.joined() << "\n"
            << "departed              " << eng.departed() << "\n"
            << "biggest_cluster_pct   " << clusters.biggest_cluster_pct << "\n"
            << "state_digest          " << digest_hex << "\n"
            << "final_measure_s       " << measure_s << "\n";
  if (!profile.empty()) {
    for (std::size_t s = 0; s < profile.shards.size(); ++s) {
      const obs::shard_profile& sp = profile.shards[s];
      std::cout << "shard[" << s << "] work_s=" << sp.work_s
                << " wait_s=" << sp.wait_s << " events=" << sp.events << "\n";
    }
    std::cout << "shard_imbalance       " << profile.imbalance() << "\n"
              << "barrier_overhead_pct  " << 100.0 * profile.barrier_overhead()
              << "\n";
  }

  workload::bench_report report("scale");
  report.param("n", static_cast<std::int64_t>(cfg.peer_count));
  report.param("warmup_periods", *warmup);
  report.param("churn_periods", *churn_rounds);
  report.param("arrivals_per_sec", *arrivals);
  report.param("rebind_frac", *rebind);
  report.param("shards", static_cast<std::int64_t>(cfg.shards));
  report.param("seed", static_cast<std::int64_t>(cfg.seed));
  util::json results = util::json::object();
  results["build_wall_s"] = build_s;
  results["run_wall_s"] = run_s;
  results["events_executed"] = events;
  results["events_per_sec"] = events_per_sec;
  results["alive_peers"] = static_cast<std::int64_t>(world.alive_count());
  results["joined"] = static_cast<std::int64_t>(eng.joined());
  results["departed"] = static_cast<std::int64_t>(eng.departed());
  results["biggest_cluster_pct"] = clusters.biggest_cluster_pct;
  results["state_digest"] = std::string(digest_hex);
  results["final_measure_s"] = measure_s;
  report.add("results", std::move(results));
  util::json telemetry = util::json::object();
  telemetry["counters"] = obs::to_json(counters);
  if (!profile.empty()) telemetry["profile"] = obs::to_json(profile);
  report.add("telemetry", std::move(telemetry));
  report.save(*json);

  if (!trace_path->empty()) {
    if (!obs::write_trace_file(*trace_path)) return 1;
    const obs::trace_stats stats = obs::trace_statistics();
    std::cerr << "# trace: " << stats.recorded << " spans from "
              << stats.threads << " threads -> " << *trace_path
              << (stats.dropped > 0
                      ? " (" + std::to_string(stats.dropped) + " dropped)"
                      : "")
              << "\n";
  }
  return 0;
}
