// Ablation A1: Nylon vs the NAT-oblivious reference vs the ARRG-style
// cache baseline under identical conditions — connectivity, staleness,
// natted-reference share and shuffle success, across %NAT.
#include <iostream>

#include "bench_common.h"
#include "metrics/graph_analysis.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_ablation_protocols");
  bench::print_preamble(
      "Ablation: protocol comparison (reference / arrg / nylon)", opt);

  runtime::text_table table({"%NAT", "protocol", "cluster %", "stale %",
                             "natted usable %", "shuffle success %"});
  for (const int pct : {40, 70, 90}) {
    for (const auto kind :
         {core::protocol_kind::reference, core::protocol_kind::arrg,
          core::protocol_kind::nylon}) {
      const auto aggs = runtime::run_seeds_multi(
          opt.seeds, opt.seed, 4, [&](std::uint64_t seed) {
            runtime::experiment_config cfg = bench::base_config(opt);
            cfg.protocol = kind;
            cfg.natted_fraction = pct / 100.0;
            cfg.seed = seed;
            runtime::scenario world(cfg);
            world.run_periods(opt.rounds);
            const auto oracle = world.oracle();
            const auto clusters = metrics::measure_clusters(
                world.transport(), world.peers(), oracle);
            const auto views = metrics::measure_views(world.transport(),
                                                      world.peers(), oracle);
            std::uint64_t initiated = 0;
            std::uint64_t responses = 0;
            for (const auto& p : world.peers()) {
              initiated += p->stats().initiated;
              responses += p->stats().responses_received;
            }
            const double success =
                initiated > 0 ? 100.0 * static_cast<double>(responses) /
                                    static_cast<double>(initiated)
                              : 0.0;
            return std::vector<double>{clusters.biggest_cluster_pct,
                                       views.stale_pct,
                                       views.fresh_natted_pct, success};
          },
          opt.run());
      table.add_row({std::to_string(pct),
                     std::string(core::to_string(kind)),
                     runtime::fmt(aggs[0].stats.mean),
                     runtime::fmt(aggs[1].stats.mean),
                     runtime::fmt(aggs[2].stats.mean),
                     runtime::fmt(aggs[3].stats.mean)});
    }
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::emit_table_json(opt, "ablation_protocols", table);
  std::cout << "\n# expected ordering: nylon > arrg > reference on every "
               "health metric;\n"
            << "# the cache baseline survives but samples badly (the "
               "paper's §1 argument).\n";
  return 0;
}
