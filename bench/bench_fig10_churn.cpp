// Fig. 10: biggest cluster size after massive churn. A fraction of the
// peers leaves simultaneously after a warm-up (the paper: after 500
// shuffles); the cluster is measured after a healing phase (the paper:
// 1500 shuffles later). Rows: departure percentage; columns: %NAT.
//
// The churn itself is a workload::program — warm up, mass departure,
// heal — executed by the workload engine; seeds run in parallel
// (--threads) and --json captures the table plus the per-seed values
// for every (departure, %NAT) cell.
#include <iostream>

#include "bench_common.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "workload/engine.h"
#include "workload/report.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_fig10_churn");
  bench::print_preamble(
      "Fig. 10: biggest cluster (%) after massive departures (Nylon)", opt);

  // Paper: churn at shuffle 500, measurement 1500 shuffles later. The
  // reduced scale shortens both phases proportionally.
  const int warmup = opt.full ? 500 : opt.rounds / 2;
  const int heal = opt.full ? 1500 : opt.rounds;

  const int nat_percents[] = {40, 50, 60, 70, 80};
  std::vector<std::string> headers{"departures \\ %NAT"};
  for (const int pct : nat_percents) headers.push_back(std::to_string(pct));
  runtime::text_table table(std::move(headers));

  workload::bench_report report("fig10_churn");
  report.param("peers", opt.peers);
  report.param("seeds", opt.seeds);
  report.param("warmup_periods", warmup);
  report.param("heal_periods", heal);
  util::json cells = util::json::array();

  for (const int departures : {50, 60, 70, 75, 80}) {
    std::vector<std::string> row{std::to_string(departures) + "%"};
    for (const int pct : nat_percents) {
      const auto agg = runtime::run_seeds(
          opt.seeds, opt.seed,
          [&](std::uint64_t seed) {
            runtime::experiment_config cfg = bench::base_config(opt);
            cfg.protocol = core::protocol_kind::nylon;
            cfg.natted_fraction = pct / 100.0;
            cfg.seed = seed;
            runtime::scenario world(cfg);

            const sim::sim_time period = cfg.gossip.shuffle_period;
            auto prog = workload::program{}
                            .then(workload::steady(warmup * period))
                            .then(workload::mass_departure(departures / 100.0))
                            .then(workload::steady(heal * period));
            workload::engine eng(world, std::move(prog));
            eng.run();
            return eng.final().clusters.biggest_cluster_pct;
          },
          opt.run());
      row.push_back(runtime::fmt(agg.stats.mean));
      util::json& cell = cells.push_back(util::json::object());
      cell["departures_pct"] = departures;
      cell["nat_pct"] = pct;
      cell["biggest_cluster_pct"] = workload::to_json(agg);
    }
    table.add_row(std::move(row));
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  report.add("table", workload::to_json(table));
  report.add("cells", std::move(cells));
  report.save(opt.json);
  std::cout << "\n# paper shape: no partition up to 50% departures; >80% of "
               "the survivors stay in\n"
            << "# the biggest cluster even at 80% departures.\n";
  return 0;
}
