#!/usr/bin/env python3
"""ctest smoke for the bench_scale shard sweep.

Runs a CI-sized sweep (n=2000, shards 1/2/4), then asserts what the CI
shell steps used to check out-of-band: the binary exits 0 (it verifies
digest equality across shard counts itself), the BENCH JSON parses, the
per-K curve is complete, and every K produced the same state digest.
Invoked by CMake as a tier-1 test so a layout or allocator change that
breaks the determinism contract fails `ctest`, not just CI.

    bench/smoke_scale.py --bench build/bench_scale
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile

SWEEP = (1, 2, 4)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bench", required=True,
                        help="path to the bench_scale binary")
    args = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="smoke_scale") as tmp:
        out = os.path.join(tmp, "BENCH_scale.json")
        cmd = [args.bench, "--n", "2000", "--warmup", "5",
               "--churn-rounds", "10",
               "--sweep-shards", ",".join(str(k) for k in SWEEP),
               "--json", out]
        print("+", " ".join(cmd), flush=True)
        proc = subprocess.run(cmd)
        assert proc.returncode == 0, \
            f"bench_scale exited {proc.returncode} (digest mismatch?)"

        with open(out, encoding="utf-8") as fh:
            doc = json.load(fh)

    assert doc.get("bench") == "scale", doc.get("bench")
    results = doc["results"]
    assert results["digests_consistent"] is True
    sweep = results["sweep"]
    assert [row["shards"] for row in sweep] == list(SWEEP), sweep
    digests = {row["state_digest"] for row in sweep}
    assert len(digests) == 1, f"digest divergence across shards: {digests}"
    for row in sweep:
        assert row["events_executed"] > 0, row
        assert row["events_per_sec"] > 0, row
        # Per-K epoch statistics (adaptive-window PR): present and sane
        # for every sharded entry.
        assert row["epochs"] > 0, row
        assert row["epoch_width_ms_mean"] > 0, row
        assert row["epoch_width_ms_max"] >= row["epoch_width_ms_mean"], row
        assert row["events_per_epoch"] > 0, row
    # The sweep runs the default adaptive policy and records it for
    # trend.py's (transport, shards, window_mode) gate key.
    assert doc["params"]["window_mode"] == "adaptive", doc["params"]
    # The last sweep entry is mirrored into the top-level scalars for
    # single-run consumers; they must agree.
    assert results["state_digest"] == sweep[-1]["state_digest"]
    assert results["events_executed"] == sweep[-1]["events_executed"]
    print(f"ok: shards {SWEEP} -> digest {digests.pop()}, "
          f"{sweep[-1]['events_executed']} events, "
          f"{[row['epochs'] for row in sweep]} epochs per K")
    return 0


if __name__ == "__main__":
    sys.exit(main())
