// Fig. 9: average number of RVPs (forwarding hops) an OPEN_HOLE traverses
// towards a natted gossip target, vs %NAT, for two view sizes.
#include <iostream>

#include "bench_common.h"
#include "core/nylon_peer.h"
#include "runtime/runner.h"
#include "runtime/scenario.h"
#include "runtime/table_printer.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  using namespace nylon;
  const bench::sweep_options opt =
      bench::parse_sweep(argc, argv, "bench_fig9_rvp_chain");
  bench::print_preamble("Fig. 9: mean RVP chain length vs %NAT (Nylon)", opt);

  auto chain_length = [&](std::size_t view_size, int pct) {
    return runtime::run_seeds(
               opt.seeds, opt.seed,
               [&](std::uint64_t seed) {
                 runtime::experiment_config cfg = bench::base_config(opt);
                 cfg.protocol = core::protocol_kind::nylon;
                 cfg.gossip.view_size = view_size;
                 cfg.natted_fraction = pct / 100.0;
                 cfg.seed = seed;
                 runtime::scenario world(cfg);
                 world.run_periods(opt.rounds);
                 util::running_stats chains;
                 for (const auto& p : world.peers()) {
                   const auto* np =
                       dynamic_cast<const core::nylon_peer*>(p.get());
                   chains.merge(np->nat_stats().punch_chain_hops);
                   chains.merge(np->nat_stats().relay_chain_hops);
                 }
                 return chains.count() > 0 ? chains.mean() : 0.0;
               },
          opt.run())
        .stats.mean;
  };

  runtime::text_table table({"%NAT",
                             "RVPs view=" + std::to_string(opt.view_a),
                             "RVPs view=" + std::to_string(opt.view_b)});
  for (int pct = 10; pct <= 100; pct += 10) {
    table.add_row({std::to_string(pct),
                   runtime::fmt(chain_length(opt.view_a, pct), 2),
                   runtime::fmt(chain_length(opt.view_b, pct), 2)});
  }
  if (opt.csv) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
  bench::emit_table_json(opt, "fig9_rvp_chain", table);
  std::cout << "\n# paper shape: 1 to ~3 RVPs, growing sub-linearly with "
               "%NAT; the larger view\n"
            << "# yields *shorter* chains (random-graph distance shrinks "
               "with degree).\n";
  return 0;
}
