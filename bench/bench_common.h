// Shared command-line handling and helpers for the figure-reproduction
// benches. Defaults are sized for a single-core box (minutes, not hours);
// `--full` switches to the paper's scale (10,000 peers, 30 seeds).
#pragma once

#include <cstdint>
#include <iostream>
#include <string>

#include "runtime/experiment_config.h"
#include "runtime/runner.h"
#include "runtime/table_printer.h"
#include "util/flags.h"
#include "workload/report.h"

namespace nylon::bench {

struct sweep_options {
  std::size_t peers = 600;
  int seeds = 1;
  int rounds = 100;       ///< shuffle periods simulated before measuring
  std::size_t view_a = 8;   ///< small view curve (paper: 15)
  std::size_t view_b = 15;  ///< large view curve (paper: 27)
  bool csv = false;
  bool full = false;
  std::uint64_t seed = 1;
  int threads = 0;          ///< seed-level parallelism (0 = all cores)
  std::size_t shards = 0;   ///< per-universe shards (0 = serial engine)
  std::string json;         ///< write BENCH_*.json here ("" = off)
  std::string latency_model = "fixed";  ///< fixed | uniform | lognormal
  std::int64_t latency_ms = 50;      ///< fixed value / uniform lo / median
  std::int64_t latency_max_ms = 50;  ///< uniform upper bound
  double latency_sigma = 0.25;       ///< lognormal log-space sigma

  /// The runner options matching these flags.
  [[nodiscard]] runtime::run_options run() const {
    return runtime::run_options{threads};
  }
};

/// Parses the common flags; on --full, switches every default to the
/// paper's settings (10,000 peers, 30 seeds, views 15/27, long runs).
/// Exits the process on --help or bad flags.
inline sweep_options parse_sweep(int argc, char** argv,
                                 const std::string& name) {
  util::flag_set flags;
  const auto* n = flags.add_int("n", 600, "population size");
  const auto* seeds = flags.add_int("seeds", 1, "independent seeds per point");
  const auto* rounds =
      flags.add_int("rounds", 100, "shuffle periods before measuring");
  const auto* view_a = flags.add_int(
      "view-a", 8, "small view size (paper: 15 at n=10000)");
  const auto* view_b = flags.add_int(
      "view-b", 15, "large view size (paper: 27 at n=10000)");
  const auto* seed = flags.add_int("seed", 1, "base seed");
  const auto* csv = flags.add_bool("csv", false, "emit CSV instead of a table");
  const auto* full =
      flags.add_bool("full", false, "paper scale: n=10000, 30 seeds, views 15/27");
  const auto* threads = flags.add_int(
      "threads", 0, "worker threads across seeds (0 = all cores, 1 = serial)");
  const auto* shards = flags.add_int(
      "shards", 0,
      "shards per universe (0 = serial engine; K >= 1 = sharded engine, "
      "byte-identical for every K)");
  const auto* json = flags.add_string(
      "json", "", "also write machine-readable results to this file");
  const auto* latency_model = flags.add_string(
      "latency-model", "fixed",
      "one-way delay distribution: fixed | uniform | lognormal");
  const auto* latency_ms = flags.add_int(
      "latency-ms", 50,
      "latency parameter: fixed value / uniform lower bound / "
      "lognormal median");
  const auto* latency_max_ms = flags.add_int(
      "latency-max-ms", 50, "uniform model upper bound");
  const auto* latency_sigma = flags.add_double(
      "latency-sigma", 0.25, "lognormal log-space sigma");
  const auto* help = flags.add_bool("help", false, "print usage");
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n" << flags.usage(name);
    std::exit(1);
  }
  if (*help) {
    std::cout << flags.usage(name);
    std::exit(0);
  }
  if (*threads < 0) {
    std::cerr << "--threads must be >= 0 (0 = all cores)\n"
              << flags.usage(name);
    std::exit(1);
  }
  if (*shards < 0) {
    std::cerr << "--shards must be >= 0 (0 = serial engine)\n"
              << flags.usage(name);
    std::exit(1);
  }
  sweep_options out;
  out.peers = static_cast<std::size_t>(*n);
  out.seeds = static_cast<int>(*seeds);
  out.rounds = static_cast<int>(*rounds);
  out.view_a = static_cast<std::size_t>(*view_a);
  out.view_b = static_cast<std::size_t>(*view_b);
  out.csv = *csv;
  out.seed = static_cast<std::uint64_t>(*seed);
  out.full = *full;
  out.threads = static_cast<int>(*threads);
  out.shards = static_cast<std::size_t>(*shards);
  out.json = *json;
  out.latency_model = *latency_model;
  if (out.latency_model != "fixed" && out.latency_model != "uniform" &&
      out.latency_model != "lognormal") {
    std::cerr << "--latency-model must be fixed, uniform or lognormal\n"
              << flags.usage(name);
    std::exit(1);
  }
  out.latency_ms = *latency_ms;
  out.latency_max_ms = *latency_max_ms;
  out.latency_sigma = *latency_sigma;
  if (out.full) {
    out.peers = 10000;
    out.seeds = 30;
    out.rounds = 600;
    out.view_a = 15;
    out.view_b = 27;
  }
  return out;
}

/// Baseline experiment config from sweep options (§5 defaults otherwise).
inline runtime::experiment_config base_config(const sweep_options& opt) {
  runtime::experiment_config cfg;
  cfg.peer_count = opt.peers;
  cfg.gossip.view_size = opt.view_a;
  using latency_kind = runtime::experiment_config::latency_kind;
  if (opt.latency_model == "uniform") {
    cfg.latency_model = latency_kind::uniform;
  } else if (opt.latency_model == "lognormal") {
    cfg.latency_model = latency_kind::lognormal;
  }
  cfg.latency = sim::millis(opt.latency_ms);
  cfg.latency_max = sim::millis(opt.latency_max_ms);
  cfg.latency_sigma = opt.latency_sigma;
  cfg.shards = opt.shards;
  return cfg;
}

/// Writes the bench's table as BENCH JSON when --json was given.
inline void emit_table_json(const sweep_options& opt, const std::string& name,
                            const runtime::text_table& table) {
  workload::bench_report report(name);
  report.add("table", workload::to_json(table));
  report.save(opt.json);
}

inline void print_preamble(const std::string& what,
                           const sweep_options& opt) {
  std::cout << "# " << what << "\n"
            << "# n=" << opt.peers << " seeds=" << opt.seeds
            << " rounds=" << opt.rounds << " views={" << opt.view_a << ","
            << opt.view_b << "}"
            << (opt.full ? " (paper scale)" : " (reduced scale; --full for paper scale)")
            << "\n";
}

}  // namespace nylon::bench
