#!/usr/bin/env python3
"""Trend line over accumulated BENCH_scale.json artifacts.

CI uploads one BENCH_scale.json per run; pointing this script at a
directory of downloaded artifacts (or at individual files) prints the
events/s trend so per-PR scale regressions are visible at a glance:

    bench/trend.py artifacts_dir
    bench/trend.py run1/BENCH_scale.json run2/BENCH_scale.json

Files are ordered by modification time (oldest first) unless given
explicitly, in which case argument order is kept.

Sweep documents (bench_scale --sweep-shards) expand into one row per
shard count, and the regression gate runs *per (transport, shard count,
window mode)*: for every combination present in the newest document, the
newest events/s is held against the best ever recorded for the same
combination. A serial-engine improvement can therefore never mask a
sharded-engine regression (and vice versa), a wall-clock-paced udp run
can neither shadow nor be judged by a sim run's throughput, and an
adaptive-window run never swallows a static-window regression (the two
policies have different events/s by design; artifacts predating the
window_mode field are all static). Sharded rows also print the epoch
statistics (epochs run, mean epoch width in sim-ms, events per epoch) so
a window-policy change shows up as a visible epoch-count shift, not just
a throughput delta. Exits non-zero when any K in the newest run is more
than --threshold percent below its per-K best; with a single file it
just prints the rows.
"""

import argparse
import json
import os
import sys


def collect(paths):
    """Expands directories into the BENCH_scale*.json files they hold."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            hits = []
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.startswith("BENCH_scale") and name.endswith(".json"):
                        hits.append(os.path.join(root, name))
            hits.sort(key=lambda p: (os.path.getmtime(p), p))
            files.extend(hits)
        else:
            files.append(path)
    return files


def load_rows(path):
    """Parses one BENCH_scale document into a list of rows — one per
    sweep entry for sweep documents, a single row otherwise. Returns []
    (with a warning) for other BENCH_*.json forms — spec reports carry
    tables/cells/checks/distributions (and, with --timeline, per-seed
    "timeline" time-series) instead of scale results and must not break
    the gate."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"skipping {path}: {err}", file=sys.stderr)
        return []
    if doc.get("bench") != "scale":
        print(f"skipping {path}: not a BENCH_scale.json document "
              f"(bench={doc.get('bench')!r})", file=sys.stderr)
        return []
    results = doc.get("results", {})
    if not isinstance(results, dict) or "events_per_sec" not in results:
        print(f"skipping {path}: no events_per_sec in results",
              file=sys.stderr)
        return []
    params = doc.get("params", {})
    # Telemetry (PR 6) is optional: older artifacts and serial runs have
    # no profile block, and must keep loading without one.
    profile = doc.get("telemetry", {}).get("profile", {})
    # Non-sim runs mark their carrier (PR 8); older artifacts are all sim.
    # udp runs are wall-clock paced, so their events/s must never be
    # compared against (or shadow the best of) a sim run — the gate keys
    # on (transport, shards).
    transport = doc.get("transport") or params.get("transport") or "sim"
    # The epoch-width policy (adaptive windows PR) keys the gate the same
    # way: static and adaptive runs are different performance regimes.
    # Artifacts predating the field all ran static windows.
    window_mode = params.get("window_mode") or "static"

    def row(shards, entry, imbalance, barrier):
        return {
            "path": path,
            "n": params.get("n"),
            "transport": transport,
            "window_mode": window_mode if shards else "-",
            "shards": shards,
            "events": entry.get("events_executed"),
            "events_per_sec": entry.get("events_per_sec"),
            "run_wall_s": entry.get("run_wall_s"),
            "epochs": entry.get("epochs"),
            "epoch_width_ms_mean": entry.get("epoch_width_ms_mean"),
            "events_per_epoch": entry.get("events_per_epoch"),
            "imbalance": imbalance,
            "barrier_overhead_pct": barrier,
        }

    sweep = results.get("sweep")
    if isinstance(sweep, list) and sweep:
        return [row(entry.get("shards"), entry, entry.get("imbalance"),
                    entry.get("barrier_overhead_pct")) for entry in sweep]
    return [row(params.get("shards"), results, profile.get("imbalance"),
                profile.get("barrier_overhead_pct"))]


def main():
    parser = argparse.ArgumentParser(
        description="events/s trend over BENCH_scale.json artifacts")
    parser.add_argument("paths", nargs="+",
                        help="BENCH_scale.json files or directories of them")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="fail when any shard count in the newest run is "
                             "this %% slower than its per-K best (0 = never "
                             "fail)")
    args = parser.parse_args()

    files = collect(args.paths)
    if not files:
        print("no BENCH_scale*.json files found", file=sys.stderr)
        return 1

    # rows stay in file order (oldest first); per-file sweep rows keep
    # their in-document K order.
    rows = []
    newest_path = None
    for path in files:
        file_rows = load_rows(path)
        if file_rows:
            rows.extend(file_rows)
            newest_path = path
    if not rows:
        print("no usable BENCH_scale documents found", file=sys.stderr)
        return 1

    header = (f"{'run':<40} {'n':>8} {'carrier':>10} {'mode':>8} {'K':>3} "
              f"{'events':>12} {'events/s':>12} {'vs best':>9} {'epochs':>8} "
              f"{'ep_w_ms':>8} {'ev/ep':>8} {'imbal':>7} {'barrier':>8}")
    print(header)
    print("-" * len(header))

    def gate_key(row):
        return (row["transport"], row["shards"], row["window_mode"])

    best_by_k = {}
    for row in rows:
        eps = row["events_per_sec"] or 0.0
        k = gate_key(row)
        if eps > best_by_k.get(k, 0.0):
            best_by_k[k] = eps
    for row in rows:
        eps = row["events_per_sec"] or 0.0
        best = best_by_k.get(gate_key(row), 0.0)
        vs_best = f"{100.0 * (eps / best - 1.0):+8.1f}%" if best else "        -"
        label = os.path.relpath(row["path"])
        if len(label) > 40:
            label = "..." + label[-37:]
        k = row["shards"] if row["shards"] is not None else "-"
        epochs = (f"{row['epochs']:>8}"
                  if row["epochs"] is not None else f"{'-':>8}")
        width = (f"{row['epoch_width_ms_mean']:>8.1f}"
                 if row["epoch_width_ms_mean"] is not None else f"{'-':>8}")
        ev_ep = (f"{row['events_per_epoch']:>8.1f}"
                 if row["events_per_epoch"] is not None else f"{'-':>8}")
        imbal = (f"{row['imbalance']:>7.3f}"
                 if row["imbalance"] is not None else f"{'-':>7}")
        barrier = (f"{row['barrier_overhead_pct']:>7.1f}%"
                   if row["barrier_overhead_pct"] is not None else f"{'-':>8}")
        print(f"{label:<40} {row['n'] or 0:>8} {row['transport']:>10} "
              f"{row['window_mode']:>8} {k:>3} {row['events'] or 0:>12} "
              f"{eps:>12.0f} {vs_best} {epochs} {width} {ev_ep} {imbal} "
              f"{barrier}")

    # Warn-only balance gate (never affects the exit code): the newest
    # run's shard-balance profile is held against the best (lowest) ever
    # recorded per (transport, shards). Throughput regressions fail via
    # --threshold; imbalance and barrier overhead are noisy on shared CI
    # runners, so a drift there only warns.
    best_balance = {}
    for row in rows:
        key = gate_key(row)
        for field in ("imbalance", "barrier_overhead_pct"):
            val = row[field]
            if val is None:
                continue
            prev = best_balance.get((key, field))
            if prev is None or val < prev:
                best_balance[(key, field)] = val
    for row in (r for r in rows if r["path"] == newest_path):
        key = gate_key(row)
        for field, slack in (("imbalance", 0.05),
                             ("barrier_overhead_pct", 5.0)):
            val = row[field]
            best = best_balance.get((key, field))
            if val is None or best is None or val <= best + slack:
                continue
            print(f"WARNING: newest run at transport={row['transport']} "
                  f"K={row['shards']} mode={row['window_mode']} has "
                  f"{field}={val:.3f}, above the best recorded {best:.3f} "
                  f"for that combination (warn-only, not a gate failure)",
                  file=sys.stderr)

    if args.threshold > 0:
        failed = False
        for row in (r for r in rows if r["path"] == newest_path):
            eps = row["events_per_sec"] or 0.0
            best = best_by_k.get(gate_key(row), 0.0)
            if best <= 0:
                continue
            drop = 100.0 * (1.0 - eps / best)
            if drop > args.threshold:
                print(f"REGRESSION: newest run at transport="
                      f"{row['transport']} K={row['shards']} "
                      f"mode={row['window_mode']} is {drop:.1f}% below the "
                      f"best for that combination ({eps:.0f} vs {best:.0f} "
                      f"events/s)", file=sys.stderr)
                failed = True
        if failed:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
