#!/usr/bin/env python3
"""Trend line over accumulated BENCH_scale.json artifacts.

CI uploads one BENCH_scale.json per run; pointing this script at a
directory of downloaded artifacts (or at individual files) prints the
events/s trend so per-PR scale regressions are visible at a glance:

    bench/trend.py artifacts_dir
    bench/trend.py run1/BENCH_scale.json run2/BENCH_scale.json

Files are ordered by modification time (oldest first) unless given
explicitly, in which case argument order is kept. Exits non-zero when the
newest run is more than --threshold percent slower than the best run, so
CI can flag regressions; with a single file it just prints the one row.
"""

import argparse
import json
import os
import sys


def collect(paths):
    """Expands directories into the BENCH_scale*.json files they hold."""
    files = []
    for path in paths:
        if os.path.isdir(path):
            hits = []
            for root, _dirs, names in os.walk(path):
                for name in sorted(names):
                    if name.startswith("BENCH_scale") and name.endswith(".json"):
                        hits.append(os.path.join(root, name))
            hits.sort(key=lambda p: (os.path.getmtime(p), p))
            files.extend(hits)
        else:
            files.append(path)
    return files


def load_row(path):
    """Parses one BENCH_scale document; returns None (with a warning) for
    other BENCH_*.json forms — spec reports carry tables/cells/checks/
    distributions instead of scale results and must not break the gate."""
    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, ValueError) as err:
        print(f"skipping {path}: {err}", file=sys.stderr)
        return None
    if doc.get("bench") != "scale":
        print(f"skipping {path}: not a BENCH_scale.json document "
              f"(bench={doc.get('bench')!r})", file=sys.stderr)
        return None
    results = doc.get("results", {})
    if not isinstance(results, dict) or "events_per_sec" not in results:
        print(f"skipping {path}: no events_per_sec in results",
              file=sys.stderr)
        return None
    params = doc.get("params", {})
    # Telemetry (PR 6) is optional: older artifacts and serial runs have
    # no profile block, and must keep loading without one.
    profile = doc.get("telemetry", {}).get("profile", {})
    return {
        "path": path,
        "n": params.get("n"),
        "events": results.get("events_executed"),
        "events_per_sec": results.get("events_per_sec"),
        "run_wall_s": results.get("run_wall_s"),
        "biggest_cluster_pct": results.get("biggest_cluster_pct"),
        "imbalance": profile.get("imbalance"),
        "barrier_overhead_pct": profile.get("barrier_overhead_pct"),
    }


def main():
    parser = argparse.ArgumentParser(
        description="events/s trend over BENCH_scale.json artifacts")
    parser.add_argument("paths", nargs="+",
                        help="BENCH_scale.json files or directories of them")
    parser.add_argument("--threshold", type=float, default=0.0,
                        help="fail when the newest run is this %% slower than "
                             "the best (0 = never fail)")
    args = parser.parse_args()

    files = collect(args.paths)
    if not files:
        print("no BENCH_scale*.json files found", file=sys.stderr)
        return 1

    rows = [row for row in (load_row(path) for path in files)
            if row is not None]
    if not rows:
        print("no usable BENCH_scale documents found", file=sys.stderr)
        return 1
    header = (f"{'run':<40} {'n':>8} {'events':>12} {'events/s':>12} "
              f"{'vs prev':>9} {'vs best':>9} {'imbal':>7} {'barrier':>8}")
    print(header)
    print("-" * len(header))
    best = max(r["events_per_sec"] or 0.0 for r in rows)
    prev = None
    for row in rows:
        eps = row["events_per_sec"] or 0.0
        vs_prev = f"{100.0 * (eps / prev - 1.0):+8.1f}%" if prev else "        -"
        vs_best = f"{100.0 * (eps / best - 1.0):+8.1f}%" if best else "        -"
        label = os.path.relpath(row["path"])
        if len(label) > 40:
            label = "..." + label[-37:]
        imbal = (f"{row['imbalance']:>7.3f}"
                 if row["imbalance"] is not None else f"{'-':>7}")
        barrier = (f"{row['barrier_overhead_pct']:>7.1f}%"
                   if row["barrier_overhead_pct"] is not None else f"{'-':>8}")
        print(f"{label:<40} {row['n'] or 0:>8} {row['events'] or 0:>12} "
              f"{eps:>12.0f} {vs_prev} {vs_best} {imbal} {barrier}")
        prev = eps

    newest = rows[-1]["events_per_sec"] or 0.0
    if args.threshold > 0 and best > 0:
        drop = 100.0 * (1.0 - newest / best)
        if drop > args.threshold:
            print(f"REGRESSION: newest run is {drop:.1f}% below the best "
                  f"({newest:.0f} vs {best:.0f} events/s)", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
